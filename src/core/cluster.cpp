#include "autonomic/autonomic_manager.hpp"
#include "core/client.hpp"
#include "core/cluster.hpp"
#include "kv/quorum.hpp"
#include "kv/replicator.hpp"
#include "kv/storage_node.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "oracle/oracle.hpp"
#include "proxy/proxy.hpp"
#include "reconfig/reconfig_manager.hpp"
#include "reconfig/replicated_rm.hpp"
#include "sim/heartbeat.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "util/histogram.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

#include <stdexcept>

namespace qopt {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      master_rng_(config.seed),
      net_(sim_, config.network, master_rng_.fork(0x6E6574)),
      fd_(sim_, config.fd_detection_delay),
      placement_(config.num_storage, config.replication,
                 mix64(config.seed ^ 0x706C6163)),
      metrics_() {
  if (!kv::is_strict(config_.initial_quorum, config_.replication)) {
    throw std::invalid_argument(
        "Cluster: initial quorum must satisfy R + W > N");
  }
  if (config_.num_proxies == 0 || config_.num_storage == 0) {
    throw std::invalid_argument("Cluster: need at least 1 proxy and storage");
  }

  net_.bind_observability(&obs_);
  // Engine self-profiler: bound whether or not profiling is requested (a
  // disabled profiler costs one branch per event); the message-name table
  // gives count_message() its display names.
  sim_.bind_profiler(&obs_.profiler());
  obs_.profiler().set_message_names(kv::kMessageTypeNames.data(),
                                    kv::kMessageTypeNames.size());
  if (config_.profile) obs_.profiler().enable();
  net_.set_loss(config_.net_loss);
  net_.set_duplication(config_.net_duplication);
  net_.set_delay_spike(config_.net_delay_spike_p, config_.net_delay_spike);
  obs_.spans().set_limits(config_.span_live_limit,
                          config_.span_completed_limit);
  if (config_.span_sample_every > 0) {
    obs_.spans().enable_all(config_.span_sample_every);
  }
  // Membership trace: every suspicion-state flip, whatever its origin
  // (oracle FD, heartbeat watcher, injected false suspicion).
  fd_.subscribe([this](const sim::NodeId& node, bool suspected) {
    obs::Tracer& tracer = obs_.tracer();
    if (!tracer.enabled(obs::Category::kMembership)) return;
    tracer.record(sim_.now(), obs::Category::kMembership,
                  suspected ? "suspect" : "unsuspect", sim::to_string(node));
  });

  // ---- storage nodes
  storage_.reserve(config_.num_storage);
  for (std::uint32_t i = 0; i < config_.num_storage; ++i) {
    const sim::NodeId id = sim::storage_id(i);
    auto node = std::make_unique<kv::StorageNode>(
        sim_, net_, id, config_.storage_service, config_.storage_servers,
        master_rng_.fork(0x5704A6E + i), &obs_);
    kv::StorageNode* raw = node.get();
    net_.register_node(id, [raw](const sim::NodeId& from,
                                 const kv::Message& msg) {
      raw->on_message(from, msg);
    });
    storage_.push_back(std::move(node));
  }

  // ---- proxies
  proxy::ProxyOptions proxy_options = config_.proxy;
  proxy_options.initial = config_.initial_quorum;
  proxies_.reserve(config_.num_proxies);
  for (std::uint32_t i = 0; i < config_.num_proxies; ++i) {
    const sim::NodeId id = sim::proxy_id(i);
    auto node = std::make_unique<proxy::Proxy>(sim_, net_, id, placement_,
                                               proxy_options, &obs_);
    proxy::Proxy* raw = node.get();
    net_.register_node(id, [raw](const sim::NodeId& from,
                                 const kv::Message& msg) {
      raw->on_message(from, msg);
    });
    if (config_.check_consistency) {
      // Intersection audit: the replica sets that actually served each
      // operation feed the checker, which verifies every read quorum meets
      // the last write's quorum (structural validation of installed
      // strategies, complementing the freshness check).
      node->set_op_callback([this](const proxy::OpRecord& rec) {
        checker_.quorum_used(rec.oid, rec.is_write, rec.cfno, rec.end,
                             rec.quorum);
      });
    }
    proxies_.push_back(std::move(node));
  }

  // ---- reconfiguration manager
  std::vector<sim::NodeId> proxy_ids;
  std::vector<sim::NodeId> storage_ids;
  for (std::uint32_t i = 0; i < config_.num_proxies; ++i) {
    proxy_ids.push_back(sim::proxy_id(i));
  }
  for (std::uint32_t i = 0; i < config_.num_storage; ++i) {
    storage_ids.push_back(sim::storage_id(i));
  }
  if (config_.rm_replicas > 1) {
    // Replicated control plane: one ReconfigManager per RM replica over a
    // private SMR log; only the leader-role holder drives phases. Proxies
    // and storages keep addressing "the RM" — whichever replica's inbox a
    // reply lands on, ReplicatedRm gates it by the leader role.
    reconfig::ReplicatedRmOptions rm_options;
    rm_options.replicas = config_.rm_replicas;
    rm_options.network = config_.network;
    rm_options.fd_detection_delay = config_.rm_fd_detection_delay;
    rm_options.seed = mix64(config_.seed ^ 0x524D726D);
    rrm_ = std::make_unique<reconfig::ReplicatedRm>(
        sim_, net_, fd_, proxy_ids, storage_ids, config_.initial_quorum,
        config_.replication, rm_options, &obs_);
    for (std::uint32_t i = 0; i < config_.rm_replicas; ++i) {
      net_.register_node(sim::rm_replica_id(i),
                         [this, i](const sim::NodeId& from,
                                   const kv::Message& msg) {
                           handle_rm_replica_message(i, from, msg);
                         });
    }
  } else {
    rm_ = std::make_unique<reconfig::ReconfigManager>(
        sim_, net_, sim::rm_id(), fd_, proxy_ids, storage_ids,
        config_.initial_quorum, config_.replication, &obs_);
    net_.register_node(sim::rm_id(), [this](const sim::NodeId& from,
                                            const kv::Message& msg) {
      handle_rm_message(from, msg);
    });
  }

  if (config_.heartbeat_fd) {
    heartbeat_watcher_ = std::make_unique<sim::HeartbeatWatcher>(
        sim_, fd_, proxy_ids, config_.heartbeat_timeout,
        config_.heartbeat_interval);
    heartbeat_watcher_->start();
    for (auto& proxy : proxies_) {
      // rm_replica_id(0) == rm_id(), so both modes start beating at the
      // initial leader; failovers retarget through the hook below.
      proxy->enable_heartbeats(sim::rm_id(), config_.heartbeat_interval);
    }
  }
  if (rrm_) {
    rrm_->set_leader_change_hook([this](std::uint32_t leader) {
      if (obs_.tracer().enabled(obs::Category::kMembership)) {
        obs_.tracer().record(sim_.now(), obs::Category::kMembership,
                             "rm_leader", sim::to_string(
                                 sim::rm_replica_id(leader)));
      }
      if (!config_.heartbeat_fd) return;
      for (auto& proxy : proxies_) {
        proxy->set_heartbeat_target(sim::rm_replica_id(leader));
      }
    });
  }

  // ---- clients (closed loop, statically bound to proxies)
  const std::uint32_t total_clients =
      config_.num_proxies * config_.clients_per_proxy;
  clients_.reserve(total_clients);
  for (std::uint32_t i = 0; i < total_clients; ++i) {
    const sim::NodeId id = sim::client_id(i);
    const sim::NodeId proxy = sim::proxy_id(i / config_.clients_per_proxy);
    auto client = std::make_unique<Client>(
        sim_, net_, id, proxy, master_rng_.fork(0xC11E47 + i), &metrics_,
        config_.check_consistency ? &checker_ : nullptr,
        config_.client_think_time, config_.num_proxies,
        config_.client_retry_timeout);
    client->bind_observability(&obs_);
    Client* raw = client.get();
    net_.register_node(id, [raw](const sim::NodeId& from,
                                 const kv::Message& msg) {
      raw->on_message(from, msg);
    });
    clients_.push_back(std::move(client));
  }
}

Cluster::~Cluster() = default;

void Cluster::handle_rm_message(const sim::NodeId& from,
                                const kv::Message& msg) {
  // The RM's inbox: heartbeats feed the failure detector's watcher and
  // never reach the protocol layer; everything else is reconfiguration
  // protocol traffic for the RM proper.
  QOPT_PROFILE_SCOPE(&obs_, obs::ProfSubsystem::kRm);
  if (std::holds_alternative<kv::HeartbeatMsg>(msg)) {
    if (heartbeat_watcher_) heartbeat_watcher_->beat(from);
    return;
  }
  rm_->on_message(from, msg);
}

void Cluster::handle_rm_replica_message(std::uint32_t replica,
                                        const sim::NodeId& from,
                                        const kv::Message& msg) {
  QOPT_PROFILE_SCOPE(&obs_, obs::ProfSubsystem::kRm);
  if (std::holds_alternative<kv::HeartbeatMsg>(msg)) {
    if (heartbeat_watcher_) heartbeat_watcher_->beat(from);
    return;
  }
  rrm_->on_message(replica, from, msg);
}

void Cluster::preload(std::uint64_t count, std::uint64_t size_bytes,
                      kv::ObjectId first_oid) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const kv::ObjectId oid = first_oid + i;
    kv::Version version;
    version.ts = kv::Timestamp{0, 0, 0};
    version.cfno = 0;
    version.value = oid;
    version.size_bytes = size_bytes;
    for (std::uint32_t replica : placement_.replicas(oid)) {
      storage_[replica]->preload(oid, version);
    }
  }
}

void Cluster::set_workload(
    std::shared_ptr<workload::OperationSource> source) {
  for (auto& client : clients_) client->set_source(source);
}

void Cluster::set_workload_for_proxy(
    std::uint32_t proxy_index,
    std::shared_ptr<workload::OperationSource> source) {
  for (std::uint32_t i = 0; i < clients_.size(); ++i) {
    if (i / config_.clients_per_proxy == proxy_index) {
      clients_[i]->set_source(source);
    }
  }
}

void Cluster::set_workload_for_client(
    std::uint32_t client_index,
    std::shared_ptr<workload::OperationSource> source) {
  clients_.at(client_index)->set_source(source);
}

void Cluster::run_for(Duration duration) {
  if (!clients_started_) {
    clients_started_ = true;
    for (auto& client : clients_) client->start();
  }
  sim_.run(sim_.now() + duration);
}

Time Cluster::now() const { return sim_.now(); }

void Cluster::stop_clients() {
  for (auto& client : clients_) client->stop();
}

void Cluster::reconfigure(kv::QuorumConfig quorum,
                          std::function<void(bool)> done) {
  kv::QuorumChange change;
  change.is_global = true;
  change.global = quorum;
  rm().change_configuration(std::move(change), std::move(done));
}

void Cluster::reconfigure_strategy(kv::QuorumStrategy strategy,
                                   std::function<void(bool)> done) {
  kv::QuorumChange change;
  change.is_global = true;
  change.global = std::move(strategy);
  rm().change_configuration(std::move(change), std::move(done));
}

void Cluster::reconfigure_objects(
    std::vector<std::pair<kv::ObjectId, kv::QuorumConfig>> overrides,
    std::function<void(bool)> done) {
  kv::QuorumChange change;
  change.is_global = false;
  change.overrides.assign(overrides.begin(), overrides.end());
  rm().change_configuration(std::move(change), std::move(done));
}

void Cluster::enable_autotuning(const autonomic::AutonomicOptions& options,
                                std::shared_ptr<oracle::Oracle> oracle) {
  if (am_) throw std::logic_error("Cluster: autotuning already enabled");
  if (!oracle) throw std::invalid_argument("Cluster: null oracle");
  oracle_ = std::move(oracle);
  std::vector<sim::NodeId> proxy_ids;
  for (std::uint32_t i = 0; i < config_.num_proxies; ++i) {
    proxy_ids.push_back(sim::proxy_id(i));
  }
  // In replicated mode the AM binds to replica 0's manager: reads see that
  // replica's committed state, and writes reroute through the replicated
  // request hook to whichever replica currently leads.
  reconfig::ReconfigManager& am_rm = rrm_ ? rrm_->rm(0) : *rm_;
  am_ = std::make_unique<autonomic::AutonomicManager>(
      sim_, net_, sim::am_id(), fd_, am_rm, *oracle_, proxy_ids,
      config_.replication, options, &obs_);
  net_.register_node(sim::am_id(), [this](const sim::NodeId& from,
                                          const kv::Message& msg) {
    am_->on_message(from, msg);
  });
  am_->start();
}

void Cluster::enable_autotuning(const autonomic::AutonomicOptions& options) {
  enable_autotuning(
      options, std::make_shared<oracle::LinearRuleOracle>(config_.replication));
}

void Cluster::enable_anti_entropy(const kv::ReplicatorOptions& options) {
  if (replicator_) {
    throw std::logic_error("Cluster: anti-entropy already enabled");
  }
  std::vector<kv::StorageNode*> nodes;
  nodes.reserve(storage_.size());
  for (auto& node : storage_) nodes.push_back(node.get());
  replicator_ = std::make_unique<kv::Replicator>(
      sim_, placement_, std::move(nodes), options, &obs_);
  replicator_->start();
}

void Cluster::crash_proxy(std::uint32_t index) {
  proxies_.at(index)->crash();
  if (obs_.tracer().enabled(obs::Category::kMembership)) {
    obs_.tracer().record(sim_.now(), obs::Category::kMembership, "crash",
                         sim::to_string(sim::proxy_id(index)));
  }
  // With heartbeat detection the suspicion arises organically from the
  // stopped beats; the oracle path keeps the configured detection delay.
  if (!config_.heartbeat_fd) fd_.node_crashed(sim::proxy_id(index));
}

void Cluster::crash_storage(std::uint32_t index) {
  storage_.at(index)->crash();
  if (obs_.tracer().enabled(obs::Category::kMembership)) {
    obs_.tracer().record(sim_.now(), obs::Category::kMembership, "crash",
                         sim::to_string(sim::storage_id(index)));
  }
  fd_.node_crashed(sim::storage_id(index));
}

void Cluster::restart_proxy(std::uint32_t index) {
  if (!proxies_.at(index)->crashed()) return;
  proxies_.at(index)->restart();
  // Mirrors crash_proxy: with heartbeat detection the suspicion clears
  // organically once the beats resume; the oracle path is told directly.
  if (!config_.heartbeat_fd) fd_.node_recovered(sim::proxy_id(index));
}

void Cluster::restart_storage(std::uint32_t index) {
  if (!storage_.at(index)->crashed()) return;
  storage_.at(index)->restart();
  if (obs_.tracer().enabled(obs::Category::kMembership)) {
    obs_.tracer().record(sim_.now(), obs::Category::kMembership, "restart",
                         sim::to_string(sim::storage_id(index)));
  }
  fd_.node_recovered(sim::storage_id(index));
}

void Cluster::inject_false_suspicion(std::uint32_t proxy_index,
                                     Duration duration) {
  fd_.inject_false_suspicion(sim::proxy_id(proxy_index), duration);
}

void Cluster::crash_rm(std::uint32_t index) {
  if (!rrm_ || rrm_->replica_crashed(index)) return;
  rrm_->crash_replica(index);
  if (obs_.tracer().enabled(obs::Category::kMembership)) {
    obs_.tracer().record(sim_.now(), obs::Category::kMembership, "crash",
                         sim::to_string(sim::rm_replica_id(index)));
  }
}

void Cluster::restart_rm(std::uint32_t index) {
  if (!rrm_ || !rrm_->replica_crashed(index)) return;
  rrm_->restart_replica(index);
  if (obs_.tracer().enabled(obs::Category::kMembership)) {
    obs_.tracer().record(sim_.now(), obs::Category::kMembership, "restart",
                         sim::to_string(sim::rm_replica_id(index)));
  }
}

std::uint64_t Cluster::isolate_rm(std::uint32_t index) {
  if (!rrm_) return 0;
  // Both planes: the kv network (proxy acks, NEWEP traffic) and the group's
  // private replication network (log entries, leadership).
  const std::uint64_t kv_partition = isolate({sim::rm_replica_id(index)});
  const std::uint64_t smr_partition = rrm_->partition_replica(index);
  const std::uint64_t handle = ++rm_partition_seq_;
  rm_partitions_[handle] = RmPartition{index, kv_partition, smr_partition};
  return handle;
}

void Cluster::heal_rm_partition(std::uint64_t handle) {
  auto it = rm_partitions_.find(handle);
  if (it == rm_partitions_.end()) return;
  heal_partition(it->second.kv_partition);
  rrm_->heal_replica_partition(it->second.replica, it->second.smr_partition);
  rm_partitions_.erase(it);
}

std::uint64_t Cluster::isolate(const std::vector<sim::NodeId>& nodes,
                               bool symmetric) {
  // Rest-of-world side: every node the cluster wired up that is not in the
  // isolated set (comparison by kind+index).
  auto contains = [&](const sim::NodeId& id) {
    for (const sim::NodeId& n : nodes) {
      if (n.kind == id.kind && n.index == id.index) return true;
    }
    return false;
  };
  std::vector<sim::NodeId> rest;
  auto add_if_outside = [&](const sim::NodeId& id) {
    if (!contains(id)) rest.push_back(id);
  };
  for (std::uint32_t i = 0; i < config_.num_storage; ++i) {
    add_if_outside(sim::storage_id(i));
  }
  for (std::uint32_t i = 0; i < config_.num_proxies; ++i) {
    add_if_outside(sim::proxy_id(i));
  }
  for (std::uint32_t i = 0; i < clients_.size(); ++i) {
    add_if_outside(sim::client_id(i));
  }
  if (config_.rm_replicas > 1) {
    for (std::uint32_t i = 0; i < config_.rm_replicas; ++i) {
      add_if_outside(sim::rm_replica_id(i));
    }
  } else {
    add_if_outside(sim::rm_id());
  }
  add_if_outside(sim::am_id());
  const std::uint64_t id = net_.add_partition(nodes, rest, symmetric);
  if (obs_.tracer().enabled(obs::Category::kMembership)) {
    obs_.tracer().record(sim_.now(), obs::Category::kMembership, "partition",
                         "net", id, nodes.size());
  }
  return id;
}

void Cluster::heal_partition(std::uint64_t id) {
  net_.heal_partition(id);
  if (obs_.tracer().enabled(obs::Category::kMembership)) {
    obs_.tracer().record(sim_.now(), obs::Category::kMembership, "heal",
                         "net", id);
  }
}

void Cluster::heal_all_partitions() {
  net_.heal_all_partitions();
  if (obs_.tracer().enabled(obs::Category::kMembership)) {
    obs_.tracer().record(sim_.now(), obs::Category::kMembership, "heal_all",
                         "net");
  }
}

namespace {

obs::LatencySummary summarize(const LatencyHistogram& hist) {
  obs::LatencySummary s;
  s.count = hist.count();
  if (s.count == 0) return s;
  s.mean_ms = hist.mean() / 1e6;  // histograms record nanoseconds
  s.p50_ms = hist.percentile(50.0) / 1e6;
  s.p95_ms = hist.percentile(95.0) / 1e6;
  s.p99_ms = hist.percentile(99.0) / 1e6;
  s.max_ms = hist.max() / 1e6;
  return s;
}

}  // namespace

obs::RunReport Cluster::report() const { return report(0, sim_.now()); }

obs::RunReport Cluster::report(Time t0, Time t1) const {
  obs::RunReport r;
  r.seed = config_.seed;
  r.num_storage = config_.num_storage;
  r.num_proxies = config_.num_proxies;
  r.num_clients = static_cast<std::uint32_t>(clients_.size());
  r.replication = config_.replication;
  r.window_start = t0;
  r.window_end = t1;

  r.ops = metrics_.ops_between(t0, t1);
  r.reads = metrics_.reads_between(t0, t1);
  r.writes = metrics_.writes_between(t0, t1);
  r.throughput_ops = metrics_.throughput(t0, t1);
  r.read_latency = summarize(metrics_.read_latency());
  r.write_latency = summarize(metrics_.write_latency());
  for (Time t = t0; t + seconds(1) <= t1; t += seconds(1)) {
    r.throughput_timeline.push_back(metrics_.throughput(t, t + seconds(1)));
  }

  const kv::FullConfig& canonical = rm().config();
  r.default_read_q = canonical.default_q.read_footprint();
  r.default_write_q = canonical.default_q.write_footprint();
  r.override_count = canonical.overrides.size();
  const obs::MetricRegistry& reg = obs_.registry();
  r.reconfigurations = reg.counter_value("rm.reconfigurations_completed");
  r.epoch_changes = reg.counter_value("rm.epoch_changes");
  r.reconfig_time_s =
      static_cast<double>(reg.counter_value("rm.reconfig_time_ns")) / 1e9;
  r.am_rounds = reg.counter_value("am.rounds");
  r.objects_tuned = reg.counter_value("am.objects_tuned");
  r.tail_reconfigs = reg.counter_value("am.tail_reconfigs");
  r.steady_reconfigs = reg.counter_value("am.steady_reconfigs");
  r.am_restarts = reg.counter_value("am.restarts");

  const sim::NetworkStats& net = net_.stats();
  r.messages_sent = net.messages_sent;
  r.messages_delivered = net.messages_delivered;
  r.dropped_sender_crashed = net.dropped_sender_crashed;
  r.dropped_receiver_crashed = net.dropped_receiver_crashed;
  r.dropped_unroutable = net.dropped_unroutable;
  r.dropped_link_loss = net.dropped_link_loss;
  r.dropped_partitioned = net.dropped_partitioned;
  r.duplicates_delivered = net.duplicates_delivered;
  r.delay_spikes = net.delay_spikes;

  r.reads_checked = checker_.reads_checked();
  r.consistency_violations = checker_.violations().size();

  r.traces_completed = reg.counter_value("obs.traces_completed");
  r.spans_dropped = reg.counter_value("obs.spans_dropped");

  if (rrm_) {
    r.has_rm_failover = true;
    r.rm_replicas = config_.rm_replicas;
    r.rm_leader_changes = reg.counter_value("rm.leader_changes");
    r.rm_rounds_resumed = reg.counter_value("rm.rounds_resumed");
    r.rm_stale_leader_msgs = reg.counter_value("rm.stale_leader_msgs_ignored");
  }

  r.instruments = reg.snapshot();

  if (obs_.profiler().enabled()) {
    // Cumulative over the profiler's lifetime (not windowed): attribution
    // covers every event the engine ran, so the per-subsystem counts sum to
    // simulator().events_processed().
    r.profile = obs_.profiler().report();
    r.has_profile = true;
  }
  return r;
}

}  // namespace qopt
