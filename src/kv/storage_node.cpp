#include "kv/service_model.hpp"
#include "kv/quorum.hpp"
#include "kv/storage_node.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "obs/trace.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::kv {

StorageNode::StorageNode(sim::Simulator& sim, Net& net, sim::NodeId self,
                         const ServiceTimes& service, std::size_t servers,
                         Rng rng, obs::Observability* obs)
    : sim_(sim),
      net_(net),
      self_(self),
      service_(service),
      pool_(servers),
      rng_(rng) {
  if (!obs) {
    own_obs_ = std::make_unique<obs::Observability>();
    obs = own_obs_.get();
  }
  obs_ = obs;
  node_name_ = sim::to_string(self_);
  auto& reg = obs_->registry();
  const std::uint32_t i = self_.index;
  ins_.reads_served = &reg.counter(obs::instrument_name("storage", i,
                                                        "reads_served"));
  ins_.writes_applied =
      &reg.counter(obs::instrument_name("storage", i, "writes_applied"));
  ins_.writes_discarded =
      &reg.counter(obs::instrument_name("storage", i, "writes_discarded"));
  ins_.nacks_sent = &reg.counter(obs::instrument_name("storage", i,
                                                      "nacks_sent"));
  ins_.epoch_changes =
      &reg.counter(obs::instrument_name("storage", i, "epoch_changes"));
  ins_.dup_writes_ignored =
      &reg.counter(obs::instrument_name("storage", i, "dup_writes_ignored"));
  ins_.restarts = &reg.counter(obs::instrument_name("storage", i,
                                                    "restarts"));
}

StorageNodeStats StorageNode::stats() const {
  StorageNodeStats s;
  s.reads_served = ins_.reads_served->value();
  s.writes_applied = ins_.writes_applied->value();
  s.writes_discarded = ins_.writes_discarded->value();
  s.nacks_sent = ins_.nacks_sent->value();
  s.epoch_changes = ins_.epoch_changes->value();
  s.dup_writes_ignored = ins_.dup_writes_ignored->value();
  s.restarts = ins_.restarts->value();
  return s;
}

void StorageNode::on_message(const sim::NodeId& from, const Message& msg) {
  QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kStorage);
  if (crashed_) return;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, StorageReadReq>) {
          handle_read(from, m);
        } else if constexpr (std::is_same_v<T, StorageWriteReq>) {
          handle_write(from, m);
        } else if constexpr (std::is_same_v<T, NewEpochMsg>) {
          handle_new_epoch(from, m);
        }
        // Other message kinds are not addressed to storage nodes.
      },
      msg);
}

void StorageNode::crash() {
  crashed_ = true;
  ++incarnation_;  // invalidates already-scheduled service completions
  net_.set_crashed(self_);
  // The dedup table is volatile: a retransmit arriving after restart is
  // re-applied, which the freshest-wins rule makes safe.
  applied_writes_.clear();
}

void StorageNode::restart() {
  if (!crashed_) return;
  crashed_ = false;
  net_.set_crashed(self_, false);
  ins_.restarts->inc();
}

const Version* StorageNode::peek(ObjectId oid) const {
  auto it = store_.find(oid);
  return it == store_.end() ? nullptr : &it->second;
}

void StorageNode::send_nack(const sim::NodeId& to, std::uint64_t op_id) {
  ins_.nacks_sent->inc();
  net_.send(self_, to, EpochNack{op_id, config_});
}

void StorageNode::handle_read(const sim::NodeId& from,
                              const StorageReadReq& req) {
  if (req.epno < config_.epno) {
    // Operation from a stale epoch: reject without serving (Alg. 6 line 13).
    send_nack(from, req.op_id);
    return;
  }
  const auto it = store_.find(req.oid);
  const std::uint64_t size = it != store_.end() ? it->second.size_bytes : 0;
  const Time done = pool_.submit(sim_.now(), service_.read_time(size, rng_));
  if (req.span.valid()) {
    // Service interval is known up front, so the span opens and closes here
    // (no capture in the completion lambda): queueing + disk time attributed
    // to the originating op's trace.
    obs::SpanStore& spans = obs_->spans();
    const obs::SpanContext s =
        spans.open_span(req.span, obs::Phase::kStorageRead, "storage_read",
                        node_name_, sim_.now());
    spans.close_span(s, done, req.oid, self_.index);
  }
  const ObjectId oid = req.oid;
  const std::uint64_t op_id = req.op_id;
  sim_.at(done, [this, from, oid, op_id, inc = incarnation_] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kStorage);
    if (crashed_ || inc != incarnation_) return;
    ins_.reads_served->inc();
    StorageReadResp resp;
    resp.op_id = op_id;
    if (auto sit = store_.find(oid); sit != store_.end()) {
      resp.found = true;
      resp.version = sit->second;  // cfno piggybacked inside the version
    }
    net_.send(self_, from, resp);
  });
}

std::set<std::uint64_t>& StorageNode::applied_writes_for(std::uint32_t index) {
  // Grows only on the first write from a new proxy; afterwards the lookup
  // is a plain vector access.
  if (index >= applied_writes_.size()) applied_writes_.resize(index + 1);
  return applied_writes_[index];
}

void StorageNode::handle_write(const sim::NodeId& from,
                               const StorageWriteReq& req) {
  if (req.epno < config_.epno) {
    send_nack(from, req.op_id);
    return;
  }
  // At-least-once dedup (explicit, beyond timestamp idempotence): a write
  // whose apply already completed — retransmitted by the proxy or duplicated
  // by the network — is acknowledged again without re-paying service time.
  // Only *applied* ids are in the table, so the fast ack never races the
  // original apply; a copy arriving while the first is still queued goes
  // through the normal path and is discarded by the timestamp rule.
  auto& seen = applied_writes_for(from.index);
  if (seen.contains(req.op_id)) {
    ins_.dup_writes_ignored->inc();
    net_.send(self_, from, StorageWriteResp{req.op_id});
    return;
  }
  const Time done = pool_.submit(
      sim_.now(), service_.write_time(req.version.size_bytes, rng_));
  if (req.span.valid()) {
    obs::SpanStore& spans = obs_->spans();
    const obs::SpanContext s =
        spans.open_span(req.span, obs::Phase::kStorageWrite, "storage_write",
                        node_name_, sim_.now());
    spans.close_span(s, done, req.oid, self_.index);
  }
  sim_.at(done, [this, from, req, inc = incarnation_] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kStorage);
    if (crashed_ || inc != incarnation_) return;
    // Apply-or-discard at service completion: newer timestamps win; an older
    // write is discarded but still acknowledged (Section 2.1).
    auto [it, inserted] = store_.try_emplace(req.oid, req.version);
    if (!inserted) {
      if (req.version.ts > it->second.ts) {
        it->second = req.version;
        ins_.writes_applied->inc();
      } else if (req.version.ts == it->second.ts &&
                 req.version.cfno > it->second.cfno) {
        // Same write re-propagated under a newer configuration (the
        // read-repair write-back of Algorithm 4): refresh the cfno tag so
        // future reads need not repeat the historical-quorum read.
        it->second.cfno = req.version.cfno;
        ins_.writes_applied->inc();
      } else {
        ins_.writes_discarded->inc();
      }
    } else {
      ins_.writes_applied->inc();
    }
    auto& applied = applied_writes_for(from.index);
    applied.insert(req.op_id);
    // Bound the window; proxy op-ids grow monotonically, so evicting the
    // smallest ids loses only the oldest (least likely to re-arrive) ones.
    constexpr std::size_t kDedupWindow = 4096;
    while (applied.size() > kDedupWindow) applied.erase(applied.begin());
    net_.send(self_, from, StorageWriteResp{req.op_id});
  });
}

Time StorageNode::replicate_in(ObjectId oid, const Version& version) {
  if (crashed_) return sim_.now();
  const Time done =
      pool_.submit(sim_.now(), service_.write_time(version.size_bytes, rng_));
  sim_.at(done, [this, oid, version, inc = incarnation_] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kStorage);
    if (crashed_ || inc != incarnation_) return;
    auto [it, inserted] = store_.try_emplace(oid, version);
    if (!inserted) {
      if (version.ts > it->second.ts) {
        it->second = version;
      } else if (version.ts == it->second.ts &&
                 version.cfno > it->second.cfno) {
        it->second.cfno = version.cfno;
      }
    }
  });
  return done;
}

void StorageNode::handle_new_epoch(const sim::NodeId& from,
                                   const NewEpochMsg& msg) {
  // Future strategy encoding this node cannot decode: neither adopt nor ack
  // (acking would count toward the epoch quorum with a half-understood
  // configuration); the RM keeps retransmitting.
  if (msg.strategy_version > QuorumStrategy::kWireVersion) return;
  // Alg. 6 lines 5-10: adopt any epoch at least as recent as ours and ack.
  if (msg.config.epno >= config_.epno) {
    if (msg.config.epno > config_.epno) {
      ins_.epoch_changes->inc();
      if (obs_->tracer().enabled(obs::Category::kReconfig)) {
        obs_->tracer().record(sim_.now(), obs::Category::kReconfig,
                              "storage_epoch", node_name_, msg.config.epno,
                              msg.config.cfno);
      }
      if (msg.span.valid()) {
        // Zero-duration adoption marker under the RM's epoch-change span.
        obs::SpanStore& spans = obs_->spans();
        const obs::SpanContext s =
            spans.open_span(msg.span, obs::Phase::kStorageEpoch,
                            "storage_epoch", node_name_, sim_.now());
        spans.close_span(s, sim_.now(), msg.config.epno, msg.config.cfno);
      }
    }
    config_ = msg.config;
  }
  net_.send(self_, from, AckNewEpochMsg{msg.config.epno});
}

}  // namespace qopt::kv
