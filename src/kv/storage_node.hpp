// Storage node process — Algorithm 6 of the paper.
//
// Responsibilities:
//  * serve quorum reads/writes from proxies, applying the classic
//    discard-older-writes rule (Section 2.1);
//  * tag versions with the configuration number under which they were
//    written and piggyback it on read replies (read-repair support);
//  * maintain the epoch number installed by the Reconfiguration Manager and
//    NACK any operation issued in an older epoch, returning the full current
//    configuration (Algorithm 6, lines 11-13);
//  * model service times: operations queue on a finite server pool with
//    disk-bound writes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "kv/quorum.hpp"
#include "kv/service_model.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::kv {

/// Legacy aggregate view; the authoritative instruments live in the shared
/// `obs::MetricRegistry` under `storage.<index>.*`.
struct StorageNodeStats {
  std::uint64_t reads_served = 0;
  std::uint64_t writes_applied = 0;
  std::uint64_t writes_discarded = 0;  // older than the stored version
  std::uint64_t nacks_sent = 0;
  std::uint64_t epoch_changes = 0;
  std::uint64_t dup_writes_ignored = 0;  // dedup hits (retransmit/dup)
  std::uint64_t restarts = 0;
};

class StorageNode {
 public:
  using Net = sim::Network<Message>;

  /// `obs` is the cluster-wide observability bundle; when null the node
  /// allocates a private one (stand-alone component tests).
  StorageNode(sim::Simulator& sim, Net& net, sim::NodeId self,
              const ServiceTimes& service, std::size_t servers, Rng rng,
              obs::Observability* obs = nullptr);

  /// Network message entry point (registered with the network by the
  /// cluster wiring).
  void on_message(const sim::NodeId& from, const Message& msg);

  void crash();
  /// Crash-recovery: rejoins the network with its durable state (store and
  /// installed epoch survive; in-flight requests and the dedup table do
  /// not). If the node's epoch went stale while it was down, the first
  /// operation it NACKs resynchronizes the issuing proxy (Algorithm 6).
  void restart();
  bool crashed() const noexcept { return crashed_; }

  std::uint64_t epoch() const noexcept { return config_.epno; }
  const FullConfig& config() const noexcept { return config_; }
  /// Observability bundle in use (the shared one, or the private fallback).
  obs::Observability& observability() noexcept { return *obs_; }
  const obs::Observability& observability() const noexcept { return *obs_; }
  [[deprecated("query the metric registry (storage.<i>.*) instead")]]
  StorageNodeStats stats() const;
  const ServicePool& service_pool() const noexcept { return pool_; }

  /// Number of distinct objects stored (tests/diagnostics).
  std::size_t object_count() const noexcept { return store_.size(); }

  /// Direct store inspection for tests; returns nullptr when absent.
  const Version* peek(ObjectId oid) const;

  /// Installs a version directly, bypassing the protocol (bulk load phase).
  void preload(ObjectId oid, const Version& version) {
    store_[oid] = version;
  }

  /// Full store contents as an oid-ordered snapshot (diagnostics/tests).
  /// The live store is a hash map for the hot path; exposing it directly
  /// would leak implementation-defined iteration order.
  std::map<ObjectId, Version> sorted_contents() const {
    return {store_.begin(), store_.end()};
  }

  /// Visits every stored (oid, version) pair without materializing a
  /// snapshot (anti-entropy sweeps). Iteration order is the hash map's —
  /// implementation-defined — so callers deriving schedules from it must
  /// sort what they collect (the replicator stable-sorts into its scratch).
  template <typename Fn>
  void for_each_version(Fn&& fn) const {
    // qopt-lint: allow(unordered-iter) callers must sort what they collect
    for (const auto& [oid, version] : store_) fn(oid, version);
  }

  /// Anti-entropy push from the replicator daemon: pays write service time
  /// and applies under the normal freshest-wins rule (no epoch check — the
  /// daemon is internal and only ever moves existing versions). Returns the
  /// service-completion time (now when crashed) so the replicator can close
  /// its repair-push span.
  Time replicate_in(ObjectId oid, const Version& version);

 private:
  void handle_read(const sim::NodeId& from, const StorageReadReq& req);
  void handle_write(const sim::NodeId& from, const StorageWriteReq& req);
  void handle_new_epoch(const sim::NodeId& from, const NewEpochMsg& msg);
  void send_nack(const sim::NodeId& to, std::uint64_t op_id);

  sim::Simulator& sim_;
  Net& net_;
  sim::NodeId self_;
  ServiceTimes service_;
  ServicePool pool_;
  Rng rng_;
  std::unordered_map<ObjectId, Version> store_;
  FullConfig config_;  // epno/cfno/current quorum state, from NEWEP messages
  bool crashed_ = false;
  /// Bumped on every crash: service-completion events scheduled before the
  /// crash carry the old incarnation and are discarded, so a quick restart
  /// cannot resurrect requests the crash should have lost.
  std::uint64_t incarnation_ = 0;
  /// At-least-once write dedup: per-proxy set of write op-ids whose apply
  /// already ran (inserted at service completion, so a dedup ack never
  /// precedes durability). Bounded by pruning the oldest ids; an evicted id
  /// that re-arrives is re-applied, which the freshest-wins rule makes
  /// idempotent. Volatile: cleared on crash (it is RAM, not disk).
  /// Indexed by the dense proxy index (grown on demand) so the per-write
  /// lookup is a vector access, not a map-node search/allocation.
  std::vector<std::set<std::uint64_t>> applied_writes_;

  /// The dedup set for proxy `index`, growing the table on first contact.
  std::set<std::uint64_t>& applied_writes_for(std::uint32_t index);

  // Observability: counters cached at construction, bumped on the hot path.
  std::unique_ptr<obs::Observability> own_obs_;  // fallback when none shared
  obs::Observability* obs_ = nullptr;
  struct Instruments {
    obs::Counter* reads_served = nullptr;
    obs::Counter* writes_applied = nullptr;
    obs::Counter* writes_discarded = nullptr;
    obs::Counter* nacks_sent = nullptr;
    obs::Counter* epoch_changes = nullptr;
    obs::Counter* dup_writes_ignored = nullptr;
    obs::Counter* restarts = nullptr;
  };
  Instruments ins_;
  std::string node_name_;  // cached to_string(self_) for trace events
};

}  // namespace qopt::kv
