#include "kv/placement.hpp"

#include <algorithm>
#include <stdexcept>

#include "kv/types.hpp"
#include "util/rng.hpp"

namespace qopt::kv {

Placement::Placement(std::uint32_t num_storage_nodes, int replication_degree,
                     std::uint64_t seed)
    : num_nodes_(num_storage_nodes),
      replication_(replication_degree),
      seed_(seed) {
  if (replication_degree <= 0 ||
      static_cast<std::uint32_t>(replication_degree) > num_storage_nodes) {
    throw std::invalid_argument(
        "Placement: replication degree must be in [1, num_storage_nodes]");
  }
}

std::vector<std::uint32_t> Placement::replicas(ObjectId oid) const {
  std::vector<std::uint32_t> out;
  replicas_into(oid, out);
  return out;
}

void Placement::replicas_into(ObjectId oid,
                              std::vector<std::uint32_t>& out) const {
  weights_.clear();
  weights_.reserve(num_nodes_);
  for (std::uint32_t node = 0; node < num_nodes_; ++node) {
    const std::uint64_t w =
        mix64(oid ^ (static_cast<std::uint64_t>(node) * 0x9E3779B97F4A7C15ULL) ^
              seed_);
    weights_.push_back(Weighted{w, node});
  }
  const auto k = static_cast<std::size_t>(replication_);
  std::partial_sort(weights_.begin(), weights_.begin() + static_cast<long>(k),
                    weights_.end(), [](const Weighted& a, const Weighted& b) {
                      if (a.weight != b.weight) return a.weight > b.weight;
                      return a.node < b.node;
                    });
  out.clear();
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(weights_[i].node);
}

}  // namespace qopt::kv
