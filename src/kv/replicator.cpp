#include "kv/placement.hpp"
#include "kv/replicator.hpp"
#include "kv/storage_node.hpp"
#include "kv/types.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

#include <algorithm>
#include <stdexcept>

namespace qopt::kv {

Replicator::Replicator(sim::Simulator& sim, const Placement& placement,
                       std::vector<StorageNode*> nodes,
                       const ReplicatorOptions& options,
                       obs::Observability* obs)
    : sim_(sim), placement_(placement), nodes_(std::move(nodes)),
      options_(options), obs_(obs) {
  if (nodes_.empty()) throw std::invalid_argument("Replicator: no nodes");
}

void Replicator::start() {
  if (running_) return;
  running_ = true;
  sim_.after(options_.interval, [this] { sweep(); });
}

void Replicator::sweep() {
  QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kReplicator);
  if (!running_) return;
  ++stats_.sweeps;

  // Build the freshest-version table across all live replicas (the
  // daemon's hash comparison pass) in the reusable scratch vector: one
  // flat buffer sorted once beats a node-allocating map rebuilt per sweep.
  // The repair loop below is throttled by max_repairs_per_sweep, so *which*
  // objects get repaired this sweep depends on iteration order — the sort
  // pins it to ascending oid, exactly the order the old ordered map gave.
  freshest_scratch_.clear();
  std::size_t total = 0;
  for (const StorageNode* node : nodes_) {
    if (!node->crashed()) total += node->object_count();
  }
  freshest_scratch_.reserve(total);
  for (const StorageNode* node : nodes_) {
    if (node->crashed()) continue;
    node->for_each_version([this](ObjectId oid, const Version& version) {
      freshest_scratch_.emplace_back(oid, version);
    });
  }
  // Ascending oid; freshest first within an oid. The stable sort keeps
  // node order among fully tied versions, so the node-scan order of the
  // old per-node snapshots decides ties exactly as before. (The hash-map
  // visit order within one node is harmless: a node holds one version per
  // oid, and the sort key does not depend on visit order.)
  std::stable_sort(
      freshest_scratch_.begin(), freshest_scratch_.end(),
      [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first < b.first;
        if (a.second.ts != b.second.ts) return b.second.ts < a.second.ts;
        return b.second.cfno < a.second.cfno;
      });
  freshest_scratch_.erase(
      std::unique(freshest_scratch_.begin(), freshest_scratch_.end(),
                  [](const auto& a, const auto& b) {
                    return a.first == b.first;
                  }),
      freshest_scratch_.end());
  const auto& freshest = freshest_scratch_;

  // One trace per sweep; each repair push is a child span covering the
  // write service time it induces on the receiving node.
  const obs::SpanContext sweep_trace =
      obs_ ? obs_->spans().start_trace(obs::TraceKind::kAntiEntropy,
                                       "anti_entropy_sweep", "replicator",
                                       sim_.now())
           : obs::SpanContext{};
  Time sweep_end = sim_.now();

  // Push the freshest version to stale or missing replicas, throttled.
  std::size_t repairs = 0;
  std::vector<std::uint32_t> replica_scratch;  // reused across objects
  for (const auto& [oid, version] : freshest) {
    ++stats_.objects_checked;
    if (repairs >= options_.max_repairs_per_sweep) break;
    placement_.replicas_into(oid, replica_scratch);
    for (std::uint32_t replica : replica_scratch) {
      StorageNode* node = nodes_[replica];
      if (node->crashed()) continue;
      const Version* held = node->peek(oid);
      const bool stale =
          !held || held->ts < version.ts ||
          (held->ts == version.ts && held->cfno < version.cfno);
      if (stale) {
        obs::SpanContext push;
        if (sweep_trace.valid()) {
          push = obs_->spans().open_span(
              sweep_trace, obs::Phase::kRepairPush, "repair_push",
              sim::to_string(sim::storage_id(replica)), sim_.now());
        }
        const Time done = node->replicate_in(oid, version);
        if (push.valid()) {
          obs_->spans().close_span(push, done, oid, replica);
        }
        sweep_end = std::max(sweep_end, done);
        ++repairs;
        ++stats_.repairs_pushed;
      }
    }
  }

  if (sweep_trace.valid()) obs_->spans().end_trace(sweep_trace, sweep_end);

  sim_.after(options_.interval, [this] { sweep(); });
}

}  // namespace qopt::kv
