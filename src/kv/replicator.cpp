#include "kv/placement.hpp"
#include "kv/replicator.hpp"
#include "kv/storage_node.hpp"
#include "kv/types.hpp"
#include "sim/simulator.hpp"

#include <map>
#include <stdexcept>

namespace qopt::kv {

Replicator::Replicator(sim::Simulator& sim, const Placement& placement,
                       std::vector<StorageNode*> nodes,
                       const ReplicatorOptions& options)
    : sim_(sim), placement_(placement), nodes_(std::move(nodes)),
      options_(options) {
  if (nodes_.empty()) throw std::invalid_argument("Replicator: no nodes");
}

void Replicator::start() {
  if (running_) return;
  running_ = true;
  sim_.after(options_.interval, [this] { sweep(); });
}

void Replicator::sweep() {
  if (!running_) return;
  ++stats_.sweeps;

  // Build the freshest-version map across all live replicas (the daemon's
  // hash comparison pass). Ordered map: the repair loop below is throttled
  // by max_repairs_per_sweep, so *which* objects get repaired this sweep
  // depends on iteration order.
  std::map<ObjectId, Version> freshest;
  for (const StorageNode* node : nodes_) {
    if (node->crashed()) continue;
    for (const auto& [oid, version] : node->sorted_contents()) {
      auto [it, inserted] = freshest.try_emplace(oid, version);
      if (!inserted && (version.ts > it->second.ts ||
                        (version.ts == it->second.ts &&
                         version.cfno > it->second.cfno))) {
        it->second = version;
      }
    }
  }

  // Push the freshest version to stale or missing replicas, throttled.
  std::size_t repairs = 0;
  for (const auto& [oid, version] : freshest) {
    ++stats_.objects_checked;
    if (repairs >= options_.max_repairs_per_sweep) break;
    for (std::uint32_t replica : placement_.replicas(oid)) {
      StorageNode* node = nodes_[replica];
      if (node->crashed()) continue;
      const Version* held = node->peek(oid);
      const bool stale =
          !held || held->ts < version.ts ||
          (held->ts == version.ts && held->cfno < version.cfno);
      if (stale) {
        node->replicate_in(oid, version);
        ++repairs;
        ++stats_.repairs_pushed;
      }
    }
  }

  sim_.after(options_.interval, [this] { sweep(); });
}

}  // namespace qopt::kv
