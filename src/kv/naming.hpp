// Object naming: Swift's external interface is account/container/object
// paths; the replicated store works on 64-bit object ids. The namer maps
// paths to ids with a stable hash (every proxy derives the same id without
// coordination) and keeps a client-side directory to detect the
// astronomically unlikely hash collision and to reverse-map ids for
// diagnostics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "kv/types.hpp"

namespace qopt::kv {

/// Stable 64-bit id for an object path (FNV-1a over the canonical
/// "account/container/object" string, then finalized). Free function: ids
/// agree across processes with no shared state.
ObjectId object_id_for(std::string_view account, std::string_view container,
                       std::string_view object);

class ObjectNamer {
 public:
  /// Registers (or re-resolves) a path; throws std::runtime_error on a hash
  /// collision between distinct paths.
  ObjectId resolve(std::string_view account, std::string_view container,
                   std::string_view object);

  /// Reverse lookup for ids previously resolved through this namer.
  std::optional<std::string> name_of(ObjectId oid) const;

  std::size_t size() const noexcept { return directory_.size(); }

 private:
  std::unordered_map<ObjectId, std::string> directory_;
};

}  // namespace qopt::kv
