// Core data-plane types of the replicated object store.
#pragma once

#include <compare>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace qopt::kv {

using ObjectId = std::uint64_t;

/// Totally ordered write timestamp. The paper assumes writes are totally
/// ordered via globally synchronized clocks with proxy identifiers breaking
/// ties [26]; the simulator's global virtual clock plays the role of the
/// synchronized clock, and a per-proxy sequence number disambiguates writes
/// issued by one proxy within the same tick.
struct Timestamp {
  Time time = 0;
  std::uint32_t proxy = 0;
  std::uint64_t seq = 0;

  friend auto operator<=>(const Timestamp&, const Timestamp&) = default;
};

/// A stored object version. `cfno` identifies the quorum configuration under
/// which the version was written (Section 5: used to detect reads that need
/// a larger, historical read quorum). `value` is an opaque payload token;
/// `size_bytes` drives the disk/network service-time model so experiments
/// can sweep object sizes without materializing payloads.
struct Version {
  Timestamp ts;
  std::uint64_t cfno = 0;
  std::uint64_t value = 0;
  std::uint64_t size_bytes = 0;
};

/// Sizes of the read and write quorums. Strong consistency requires
/// read_q + write_q > replication degree N (checked where configured).
struct QuorumConfig {
  int read_q = 1;
  int write_q = 1;

  friend auto operator<=>(const QuorumConfig&, const QuorumConfig&) = default;
};

constexpr bool is_strict(const QuorumConfig& q, int replication) noexcept {
  return q.read_q >= 1 && q.write_q >= 1 && q.read_q <= replication &&
         q.write_q <= replication && q.read_q + q.write_q > replication;
}

/// Component-wise max; the transition quorum of Section 5.1 is
/// transition(old, new).
constexpr QuorumConfig transition(const QuorumConfig& a,
                                  const QuorumConfig& b) noexcept {
  return QuorumConfig{a.read_q > b.read_q ? a.read_q : b.read_q,
                      a.write_q > b.write_q ? a.write_q : b.write_q};
}

/// A reconfiguration payload: either a new store-wide default quorum
/// (the "tail"/global configuration) or a batch of per-object overrides
/// (the fine-grain top-k optimization of Section 5.4).
struct QuorumChange {
  bool is_global = true;
  QuorumConfig global;  // valid when is_global
  std::vector<std::pair<ObjectId, QuorumConfig>> overrides;  // otherwise
};

/// Complete quorum state as known by the Reconfiguration Manager. Carried on
/// NEWEP messages (and echoed in storage NACKs) so that a proxy that missed
/// an arbitrary number of reconfigurations while falsely suspected can
/// resynchronize in one step — including the read-quorum history needed by
/// the Algorithm-4 repair path (see DESIGN.md, deviation notes).
struct FullConfig {
  std::uint64_t epno = 0;
  std::uint64_t cfno = 0;
  QuorumConfig default_q{1, 1};
  std::vector<std::pair<ObjectId, QuorumConfig>> overrides;
  /// For each installed configuration number, the maximum read-quorum size
  /// in force at that configuration (across the default and all overrides);
  /// monotone prefix used by the read-repair rule. Sorted by cfno ascending.
  std::vector<std::pair<std::uint64_t, int>> read_q_history;
  /// Set on the payload of a phase-1 epoch change: default_q/overrides hold
  /// the *transition* quorums of an in-flight reconfiguration, and `pending`
  /// is the change a resynchronizing proxy must commit when the matching
  /// CONFIRM arrives (or when a later configuration supersedes it).
  bool transitional = false;
  QuorumChange pending;
};

}  // namespace qopt::kv
