// Core data-plane types of the replicated object store.
#pragma once

#include <compare>
#include <cstdint>

#include "util/time.hpp"

namespace qopt::kv {

using ObjectId = std::uint64_t;

/// Totally ordered write timestamp. The paper assumes writes are totally
/// ordered via globally synchronized clocks with proxy identifiers breaking
/// ties [26]; the simulator's global virtual clock plays the role of the
/// synchronized clock, and a per-proxy sequence number disambiguates writes
/// issued by one proxy within the same tick.
struct Timestamp {
  Time time = 0;
  std::uint32_t proxy = 0;
  std::uint64_t seq = 0;

  friend auto operator<=>(const Timestamp&, const Timestamp&) = default;
};

/// A stored object version. `cfno` identifies the quorum configuration under
/// which the version was written (Section 5: used to detect reads that need
/// a larger, historical read quorum). `value` is an opaque payload token;
/// `size_bytes` drives the disk/network service-time model so experiments
/// can sweep object sizes without materializing payloads.
struct Version {
  Timestamp ts;
  std::uint64_t cfno = 0;
  std::uint64_t value = 0;
  std::uint64_t size_bytes = 0;
};

/// Sizes of the read and write quorums of a uniform majority grid: any
/// read_q replicas form a read quorum, any write_q a write quorum. Strong
/// consistency requires read_q + write_q > replication degree N (checked by
/// kv::is_strict in kv/quorum.hpp, where the full quorum-system algebra —
/// including the generalized QuorumStrategy — lives).
struct QuorumConfig {
  int read_q = 1;
  int write_q = 1;

  /// Named construction path (qopt_lint validates the arguments like a
  /// literal); prefer this over brace-init at call sites.
  static constexpr QuorumConfig of(int r, int w) noexcept {
    return QuorumConfig{r, w};
  }

  friend auto operator<=>(const QuorumConfig&, const QuorumConfig&) = default;
};

}  // namespace qopt::kv
