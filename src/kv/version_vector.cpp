#include "kv/version_vector.hpp"

#include <algorithm>

namespace qopt::kv {

std::uint64_t VersionVector::increment(std::uint32_t proxy) {
  return ++counters_[proxy];
}

std::uint64_t VersionVector::counter(std::uint32_t proxy) const {
  auto it = counters_.find(proxy);
  return it == counters_.end() ? 0 : it->second;
}

CausalOrder VersionVector::compare(const VersionVector& other) const {
  bool some_less = false;   // some component of *this < other
  bool some_greater = false;
  auto mine = counters_.begin();
  auto theirs = other.counters_.begin();
  while (mine != counters_.end() || theirs != other.counters_.end()) {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (theirs == other.counters_.end() ||
        (mine != counters_.end() && mine->first < theirs->first)) {
      a = mine->second;
      ++mine;
    } else if (mine == counters_.end() || theirs->first < mine->first) {
      b = theirs->second;
      ++theirs;
    } else {
      a = mine->second;
      b = theirs->second;
      ++mine;
      ++theirs;
    }
    some_less |= a < b;
    some_greater |= a > b;
  }
  if (some_less && some_greater) return CausalOrder::kConcurrent;
  if (some_less) return CausalOrder::kBefore;
  if (some_greater) return CausalOrder::kAfter;
  return CausalOrder::kEqual;
}

VersionVector VersionVector::merged(const VersionVector& other) const {
  VersionVector out = *this;
  for (const auto& [proxy, counter] : other.counters_) {
    auto [it, inserted] = out.counters_.emplace(proxy, counter);
    if (!inserted) it->second = std::max(it->second, counter);
  }
  return out;
}

bool VersionVector::totally_before(const VersionVector& other,
                                   std::uint32_t my_proxy,
                                   std::uint32_t other_proxy) const {
  switch (compare(other)) {
    case CausalOrder::kBefore:
      return true;
    case CausalOrder::kAfter:
      return false;
    case CausalOrder::kEqual:
      return my_proxy < other_proxy;
    case CausalOrder::kConcurrent:
      break;
  }
  // Concurrent: any deterministic rule works as long as every node applies
  // the same one. Use total event count, then the writer proxy id.
  std::uint64_t my_sum = 0;
  for (const auto& [proxy, counter] : counters_) my_sum += counter;
  std::uint64_t other_sum = 0;
  for (const auto& [proxy, counter] : other.counters_) {
    other_sum += counter;
  }
  if (my_sum != other_sum) return my_sum < other_sum;
  return my_proxy < other_proxy;
}

std::string VersionVector::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [proxy, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "p" + std::to_string(proxy) + ":" + std::to_string(counter);
  }
  return out + "}";
}

}  // namespace qopt::kv
