// Queueing/service-time model for simulated storage and proxy nodes.
//
// A node is a pool of `servers` identical servers (the paper's storage VMs
// have 2 virtual cores over 15K-RPM disks; proxies have 8 cores). Each
// operation occupies one server for its service time; operations queue FCFS
// when all servers are busy. Writes are slower than reads ("read operations
// are faster than write operations (as these need to write to disk)",
// Section 2.2), and both scale with object size.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::kv {

// Service times are stochastic: rotational disks (the paper's testbed uses
// 15K-RPM SATA drives) have highly variable positioning delays, and it is
// precisely this variability that makes operation latency grow with quorum
// size (an operation waits for the max of k service times). The jitter
// components are exponentially distributed.
struct ServiceTimes {
  Duration read_base = microseconds(850);
  Duration read_jitter = microseconds(900);    // positioning / cache miss
  Duration write_base = microseconds(1000);
  Duration write_jitter = microseconds(1000);  // positioning + commit
  // Per-KiB incremental costs. Asymmetric on purpose: reads of recently
  // accessed objects are largely served from the page cache (memory-speed
  // per byte), while writes must be journalled and flushed to disk.
  Duration read_per_kib = microseconds(4);
  Duration write_per_kib = microseconds(40);

  Duration read_time(std::uint64_t size_bytes, Rng& rng) const {
    return read_base +
           static_cast<Duration>(rng.exponential(
               static_cast<double>(read_jitter))) +
           static_cast<Duration>(size_bytes / 1024) * read_per_kib;
  }
  Duration write_time(std::uint64_t size_bytes, Rng& rng) const {
    return write_base +
           static_cast<Duration>(rng.exponential(
               static_cast<double>(write_jitter))) +
           static_cast<Duration>(size_bytes / 1024) * write_per_kib;
  }
};

/// FCFS multi-server station: submit(now, svc) returns the completion time
/// and books the chosen server until then.
class ServicePool {
 public:
  explicit ServicePool(std::size_t servers)
      : free_at_(servers ? servers : 1, 0) {}

  Time submit(Time now, Duration service) {
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    const Time start = std::max(now, *it);
    const Time done = start + service;
    *it = done;
    busy_ += service;
    return done;
  }

  std::size_t servers() const noexcept { return free_at_.size(); }

  /// Cumulative busy time across servers (for utilization reporting).
  Duration total_busy() const noexcept { return busy_; }

  /// Utilization in [0,1] over the interval [0, now].
  double utilization(Time now) const {
    if (now <= 0) return 0.0;
    const double capacity =
        static_cast<double>(now) * static_cast<double>(free_at_.size());
    return std::min(1.0, static_cast<double>(busy_) / capacity);
  }

 private:
  std::vector<Time> free_at_;
  Duration busy_ = 0;
};

}  // namespace qopt::kv
