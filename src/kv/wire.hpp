// Wire protocol: every message exchanged between clients, proxies, storage
// nodes, the Reconfiguration Manager, and the Autonomic Manager.
//
// Message names follow the paper's pseudo-code (NEWQ, ACKNEWQ, CONFIRM,
// ACKCONFIRM, NEWEP, ACKNEWEP, NACK, NEWROUND, ROUNDSTATS, NEWTOPK).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <variant>
#include <vector>

#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "obs/span.hpp"
#include "util/time.hpp"

namespace qopt::kv {

// ---------------------------------------------------------------- clients

struct ClientReadReq {
  ObjectId oid = 0;
  std::uint64_t req_id = 0;
};

struct ClientReadResp {
  std::uint64_t req_id = 0;
  bool found = false;
  Version version;  // valid when found
  /// Set when the proxy abandoned the operation after exhausting its
  /// retransmit budget (lossy network); found/version are meaningless.
  bool failed = false;
};

struct ClientWriteReq {
  ObjectId oid = 0;
  std::uint64_t req_id = 0;
  std::uint64_t value = 0;
  std::uint64_t size_bytes = 0;
};

struct ClientWriteResp {
  std::uint64_t req_id = 0;
  Timestamp ts;  // version timestamp assigned by the proxy (etag-style)
  /// Retry budget exhausted; the write may or may not be (partially)
  /// applied — the client must treat it as indeterminate, like an RPC
  /// timeout in a real store.
  bool failed = false;
};

// ------------------------------------------------------- proxy <-> storage

struct StorageReadReq {
  ObjectId oid = 0;
  std::uint64_t op_id = 0;
  std::uint64_t epno = 0;
  /// Causal context of the proxy's per-replica RPC span (zero when the
  /// originating operation is not sampled); responses need no context — the
  /// proxy maps replies back through `op_id`.
  obs::SpanContext span;
};

struct StorageReadResp {
  std::uint64_t op_id = 0;
  bool found = false;
  Version version;  // piggybacks the version's cfno (Algorithm 6, line 19)
};

struct StorageWriteReq {
  ObjectId oid = 0;
  std::uint64_t op_id = 0;
  std::uint64_t epno = 0;
  Version version;  // carries ts and the proxy's cfno tag
  obs::SpanContext span;  // see StorageReadReq
};

struct StorageWriteResp {
  std::uint64_t op_id = 0;
};

/// Rejection of an operation issued in a stale epoch (Algorithm 6, line 13).
/// Carries the full current configuration so the proxy resynchronizes in one
/// step.
struct EpochNack {
  std::uint64_t op_id = 0;
  FullConfig config;
};

// --------------------------------------------------------- RM <-> proxies

struct NewQuorumMsg {  // NEWQ
  std::uint64_t epno = 0;
  std::uint64_t cfno = 0;
  QuorumChange change;
  /// RM phase-1 span: proxies parent their drain spans under it.
  obs::SpanContext span;
  /// Version of the QuorumStrategy encoding carried in `change`; receivers
  /// ignore installs from the future (see docs/PROTOCOL.md) so a staged
  /// rollout of a richer strategy encoding cannot corrupt old proxies.
  /// Appended last so pre-redesign positional initializers stay valid.
  std::uint8_t strategy_version = QuorumStrategy::kWireVersion;
};

struct AckNewQuorumMsg {  // ACKNEWQ
  std::uint64_t epno = 0;
  std::uint64_t cfno = 0;
};

struct ConfirmMsg {  // CONFIRM
  std::uint64_t epno = 0;
  std::uint64_t cfno = 0;
  obs::SpanContext span;  // RM phase-2 span (proxy adoption markers)
};

struct AckConfirmMsg {  // ACKCONFIRM
  std::uint64_t epno = 0;
  std::uint64_t cfno = 0;
};

// --------------------------------------------------------- RM <-> storage

struct NewEpochMsg {  // NEWEP
  FullConfig config;
  obs::SpanContext span;  // RM epoch-change span (storage adoption markers)
  std::uint8_t strategy_version = QuorumStrategy::kWireVersion;  // see NEWQ
};

struct AckNewEpochMsg {  // ACKNEWEP
  std::uint64_t epno = 0;
};

// ------------------------------------------------------------- heartbeats

/// Periodic liveness beacon from proxies to the control plane; feeds the
/// heartbeat-based failure detector (suspicions then arise organically from
/// the simulated network rather than from an omniscient oracle).
struct HeartbeatMsg {
  std::uint64_t seq = 0;
};

// --------------------------------------------------------- AM <-> proxies

struct NewRoundMsg {  // NEWROUND
  std::uint64_t round = 0;
  Duration window = 0;  // proxy reports stats after this much virtual time
};

/// Per-object access profile reported for the monitored (top-k) set.
struct ObjectStats {
  ObjectId oid = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double avg_size_bytes = 0;
};

/// Aggregate profile of the non-individually-optimized tail.
struct TailStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double avg_size_bytes = 0;

  double write_ratio() const {
    const double total = static_cast<double>(reads + writes);
    return total > 0 ? static_cast<double>(writes) / total : 0.0;
  }
};

struct TopKReport {
  ObjectId oid = 0;
  std::uint64_t count = 0;  // Space-Saving count upper bound
  std::uint64_t error = 0;
};

struct RoundStatsMsg {  // ROUNDSTATS
  std::uint64_t round = 0;
  std::vector<TopKReport> topk;           // candidate hotspots this round
  std::vector<ObjectStats> stats_topk;    // profiles of monitored objects
  TailStats stats_tail;                   // aggregate tail profile
  double throughput_ops = 0;              // ops/s during the window
  double avg_latency_ms = 0;              // mean client-op latency
};

struct NewTopKMsg {  // NEWTOPK
  std::uint64_t round = 0;
  std::vector<ObjectId> monitored;  // objects to profile next round
};

// ------------------------------------------------------------------ union

using Message =
    std::variant<ClientReadReq, ClientReadResp, ClientWriteReq,
                 ClientWriteResp, StorageReadReq, StorageReadResp,
                 StorageWriteReq, StorageWriteResp, EpochNack, NewQuorumMsg,
                 AckNewQuorumMsg, ConfirmMsg, AckConfirmMsg, NewEpochMsg,
                 AckNewEpochMsg, NewRoundMsg, RoundStatsMsg, NewTopKMsg,
                 HeartbeatMsg>;

inline constexpr std::size_t kMessageTypeCount = std::variant_size_v<Message>;

/// Display names in variant-tag order — metadata for the engine profiler's
/// per-message-type attribution (Cluster injects it into obs, which cannot
/// include this header). The tag order itself is pinned by qopt_proto's
/// append-only-evolution rule, so this table only ever grows at the end.
inline constexpr std::array<const char*, kMessageTypeCount>
    kMessageTypeNames = {
        "ClientReadReq",   "ClientReadResp", "ClientWriteReq",
        "ClientWriteResp", "StorageReadReq", "StorageReadResp",
        "StorageWriteReq", "StorageWriteResp", "EpochNack",
        "NewQuorumMsg",    "AckNewQuorumMsg", "ConfirmMsg",
        "AckConfirmMsg",   "NewEpochMsg",    "AckNewEpochMsg",
        "NewRoundMsg",     "RoundStatsMsg",  "NewTopKMsg",
        "HeartbeatMsg",
};

}  // namespace qopt::kv
