// Anti-entropy replicator — the background replication daemon of Swift-like
// stores. With W < N, a write leaves N - W replicas stale until the next
// overwriting write or read-repair; Swift's object replicator periodically
// walks the object space comparing replicas and pushing the freshest
// version to the laggards. This both restores full redundancy (a
// fault-tolerance concern) and lets future small-read-quorum reads find
// fresh data without historical-quorum repairs.
//
// The sweep itself models the daemon's local hash comparison (free at the
// simulation's level of abstraction); every repair push costs a real write
// service on the receiving node, so anti-entropy competes with foreground
// traffic for disk time exactly as it does in production.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "kv/placement.hpp"
#include "kv/storage_node.hpp"
#include "kv/types.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace qopt::kv {

struct ReplicatorOptions {
  Duration interval = seconds(10);       // full sweep period
  std::size_t max_repairs_per_sweep = 1000;  // throttle background load
};

struct ReplicatorStats {
  std::uint64_t sweeps = 0;
  std::uint64_t objects_checked = 0;
  std::uint64_t repairs_pushed = 0;
};

class Replicator {
 public:
  /// `obs` (optional) enables per-sweep anti-entropy traces: one root span
  /// per sweep, one repair-push child per version pushed.
  Replicator(sim::Simulator& sim, const Placement& placement,
             std::vector<StorageNode*> nodes, const ReplicatorOptions& options,
             obs::Observability* obs = nullptr);

  void start();
  void stop() noexcept { running_ = false; }
  bool running() const noexcept { return running_; }

  const ReplicatorStats& stats() const noexcept { return stats_; }

 private:
  void sweep();

  sim::Simulator& sim_;
  const Placement& placement_;
  std::vector<StorageNode*> nodes_;
  ReplicatorOptions options_;
  ReplicatorStats stats_;
  bool running_ = false;
  obs::Observability* obs_ = nullptr;  // nullable: spans off when absent
  /// Freshest-version table scratch, reused across sweeps so steady-state
  /// sweeps allocate nothing once the buffer has grown to the store size.
  std::vector<std::pair<ObjectId, Version>> freshest_scratch_;
};

}  // namespace qopt::kv
