#include "kv/naming.hpp"

#include <stdexcept>

#include "kv/types.hpp"
#include "util/rng.hpp"

namespace qopt::kv {

namespace {
std::string canonical(std::string_view account, std::string_view container,
                      std::string_view object) {
  std::string path;
  path.reserve(account.size() + container.size() + object.size() + 2);
  path.append(account);
  path.push_back('/');
  path.append(container);
  path.push_back('/');
  path.append(object);
  return path;
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}
}  // namespace

ObjectId object_id_for(std::string_view account, std::string_view container,
                       std::string_view object) {
  // Finalize the FNV state through one splitmix round for better high-bit
  // diffusion (placement hashes the id again).
  return mix64(fnv1a(canonical(account, container, object)));
}

ObjectId ObjectNamer::resolve(std::string_view account,
                              std::string_view container,
                              std::string_view object) {
  const std::string path = canonical(account, container, object);
  const ObjectId oid = mix64(fnv1a(path));
  auto [it, inserted] = directory_.emplace(oid, path);
  if (!inserted && it->second != path) {
    throw std::runtime_error("ObjectNamer: hash collision between '" +
                             it->second + "' and '" + path + "'");
  }
  return oid;
}

std::optional<std::string> ObjectNamer::name_of(ObjectId oid) const {
  auto it = directory_.find(oid);
  if (it == directory_.end()) return std::nullopt;
  return it->second;
}

}  // namespace qopt::kv
