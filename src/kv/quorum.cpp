#include "kv/quorum.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace qopt::kv {
namespace {

int min_size(const std::vector<WeightedQuorum>& set) noexcept {
  std::size_t best = 0;
  bool first = true;
  for (const auto& q : set) {
    if (first || q.members.size() < best) best = q.members.size();
    first = false;
  }
  return static_cast<int>(best);
}

bool well_formed(const std::vector<WeightedQuorum>& set, int n) {
  if (set.empty()) return false;
  double total = 0.0;
  for (const auto& q : set) {
    if (q.members.empty()) return false;
    if (!(q.weight > 0.0) || !std::isfinite(q.weight)) return false;
    for (std::size_t i = 0; i < q.members.size(); ++i) {
      if (q.members[i] >= static_cast<std::uint32_t>(n)) return false;
      if (i > 0 && q.members[i] <= q.members[i - 1]) return false;  // sorted
    }
    total += q.weight;
  }
  return total > 0.0;
}

const WeightedQuorum& sample(const std::vector<WeightedQuorum>& set,
                             Rng& rng) {
  assert(!set.empty());
  if (set.empty()) {
    // Unreachable for any installed strategy (valid() rejects empty sides);
    // a well-defined fallback beats undefined behaviour in release builds.
    static const WeightedQuorum kEmpty{};
    return kEmpty;
  }
  double total = 0.0;
  for (const auto& q : set) total += q.weight;
  double point = rng.next_double() * total;
  for (const auto& q : set) {
    point -= q.weight;
    if (point < 0.0) return q;
  }
  return set.back();  // numeric slack: point landed exactly on `total`
}

}  // namespace

QuorumStrategy QuorumStrategy::majority(int r, int w, int n) {
  assert(r >= 1 && w >= 1);
  assert(n == 0 || is_strict(QuorumConfig{r, w}, n));
  return QuorumStrategy(QuorumConfig{r, w});
}

QuorumStrategy QuorumStrategy::explicit_sets(int n,
                                             std::vector<WeightedQuorum> reads,
                                             std::vector<WeightedQuorum> writes) {
  QuorumStrategy s;
  s.kind = Kind::kExplicit;
  s.n = n;
  for (auto& q : reads) std::sort(q.members.begin(), q.members.end());
  for (auto& q : writes) std::sort(q.members.begin(), q.members.end());
  s.reads = std::move(reads);
  s.writes = std::move(writes);
  // A side with no quorums (or n < 1) is malformed — valid() rejects it for
  // every replication degree; keep the default grid rather than mirroring a
  // footprint derived from an empty side.
  if (n >= 1 && !s.reads.empty() && !s.writes.empty()) {
    // The grid field is unused for explicit strategies; mirror the footprint
    // so accidental reads of `grid` stay sane rather than the {1,1} default.
    s.grid = QuorumConfig{s.read_footprint(), s.write_footprint()};
  }
  return s;
}

int QuorumStrategy::min_read_size() const noexcept {
  return is_majority() ? grid.read_q : min_size(reads);
}

int QuorumStrategy::min_write_size() const noexcept {
  return is_majority() ? grid.write_q : min_size(writes);
}

int QuorumStrategy::read_footprint() const noexcept {
  if (is_majority()) return grid.read_q;
  // Malformed (empty side): be conservative — demand every replica. valid()
  // rejects such a strategy before it can ever be installed.
  if (writes.empty()) return n < 1 ? 1 : n;
  // Any (n - wmin + 1) replicas intersect every write quorum: a write quorum
  // has >= wmin members, and two subsets of [n] with sizes a, b intersect
  // whenever a + b > n.
  int fp = n - min_write_size() + 1;
  return fp < 1 ? 1 : (fp > n ? n : fp);
}

int QuorumStrategy::write_footprint() const noexcept {
  if (is_majority()) return grid.write_q;
  if (reads.empty()) return n < 1 ? 1 : n;
  int fp = n - min_read_size() + 1;
  return fp < 1 ? 1 : (fp > n ? n : fp);
}

const WeightedQuorum& QuorumStrategy::sample_read(Rng& rng) const {
  assert(!is_majority());
  return sample(reads, rng);
}

const WeightedQuorum& QuorumStrategy::sample_write(Rng& rng) const {
  assert(!is_majority());
  return sample(writes, rng);
}

bool QuorumStrategy::valid(int replication) const {
  if (is_majority()) {
    return (n == 0 || n == replication) && is_strict(grid, replication);
  }
  if (n != replication || replication < 1) return false;
  if (!well_formed(reads, n) || !well_formed(writes, n)) return false;
  // Counting compositionality: the proxy may complete a write with any
  // write_footprint() = n - rmin + 1 distinct replies and a read with any
  // read_footprint() = n - wmin + 1, without either set containing a full
  // quorum. Those two completion sets intersect by counting only when
  // (n - rmin + 1) + (n - wmin + 1) > n, i.e. rmin + wmin <= n + 1. Without
  // this, e.g. reads = writes = {[0..n)} at n = 3 passes pairwise
  // intersection yet lets a 1-reply write miss a 1-reply read entirely.
  // Majority grids satisfy it trivially (any r/w-set IS a quorum).
  if (min_read_size() + min_write_size() > n + 1) return false;
  return quorums_intersect(reads, writes);
}

std::string QuorumStrategy::describe() const {
  char buf[64];
  if (is_majority()) {
    std::snprintf(buf, sizeof(buf), "majority(r=%d,w=%d)", grid.read_q,
                  grid.write_q);
  } else {
    std::snprintf(buf, sizeof(buf), "explicit(n=%d,reads=%zu,writes=%zu)", n,
                  reads.size(), writes.size());
  }
  return buf;
}

bool sets_intersect(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

bool quorums_intersect(const std::vector<WeightedQuorum>& a,
                       const std::vector<WeightedQuorum>& b) {
  for (const auto& qa : a) {
    for (const auto& qb : b) {
      if (!sets_intersect(qa.members, qb.members)) return false;
    }
  }
  return true;
}

QuorumStrategy transition(const QuorumStrategy& a, const QuorumStrategy& b) {
  return QuorumStrategy(transition(a.footprint(), b.footprint()));
}

bool validate_change(const QuorumChange& change, int replication) {
  if (change.is_global) return change.global.valid(replication);
  if (change.overrides.empty()) return false;
  for (const auto& [oid, strategy] : change.overrides) {
    (void)oid;
    if (!strategy.valid(replication)) return false;
  }
  return true;
}

}  // namespace qopt::kv
