// Version vectors — the causal-ordering metadata the paper cites as the
// alternative to globally synchronized clocks for totally ordering writes
// (Section 2.1: "using a combination of causal ordering and proxy
// identifiers (to order concurrent requests), e.g., based on vector clocks
// [25] with commutative merge functions [11]").
//
// The simulator's data path uses the synchronized-clock scheme (a global
// virtual clock exists anyway); this module provides the full vector-clock
// substrate — comparison, increment, and the commutative merge — plus the
// deterministic concurrent-write tie-break by proxy identifier, so a
// deployment without synchronized clocks can swap its ordering layer.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace qopt::kv {

enum class CausalOrder {
  kEqual,
  kBefore,      // this happens-before other
  kAfter,       // other happens-before this
  kConcurrent,  // neither dominates
};

class VersionVector {
 public:
  VersionVector() = default;

  /// Records one more event at `proxy` (returns the new counter value).
  std::uint64_t increment(std::uint32_t proxy);

  std::uint64_t counter(std::uint32_t proxy) const;

  CausalOrder compare(const VersionVector& other) const;
  bool dominates(const VersionVector& other) const {
    const CausalOrder order = compare(other);
    return order == CausalOrder::kAfter || order == CausalOrder::kEqual;
  }
  bool concurrent_with(const VersionVector& other) const {
    return compare(other) == CausalOrder::kConcurrent;
  }

  /// Commutative, associative, idempotent join: component-wise max. The
  /// merge of two concurrent versions dominates both.
  VersionVector merged(const VersionVector& other) const;

  /// Deterministic total order refining causality: causal order where it
  /// exists; concurrent versions are ordered by (sum of counters, then
  /// lowest differing proxy's counter, then proxy id) — the "proxy
  /// identifiers to order concurrent requests" rule.
  bool totally_before(const VersionVector& other, std::uint32_t my_proxy,
                      std::uint32_t other_proxy) const;

  bool empty() const noexcept { return counters_.empty(); }
  std::size_t size() const noexcept { return counters_.size(); }
  std::string to_string() const;

  friend bool operator==(const VersionVector&, const VersionVector&) =
      default;

 private:
  std::map<std::uint32_t, std::uint64_t> counters_;
};

}  // namespace qopt::kv
