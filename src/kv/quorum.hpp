// Quorum-system algebra: the QuorumStrategy abstraction and every
// intersection/strictness/transition rule of the store, in one place.
//
// The paper (and the seed reproduction) models a quorum configuration as a
// uniform (r, w) majority grid: any r replicas form a read quorum, any w a
// write quorum, with r + w > n guaranteeing intersection by counting.
// "Read-Write Quorum Systems Made Practical" (Whittaker et al.) shows the
// optimal system is usually *not* such a grid, so this header generalizes
// the configuration to a QuorumStrategy: explicit sets of read and write
// quorums (placement-relative replica slots) with selection probabilities,
// satisfying pairwise read/write intersection. The uniform grid survives as
// the kMajority kind — the compact encoding every pre-redesign call site and
// serialized trace maps onto via QuorumConfig — and every size-based
// protocol rule (transition quorums, read-repair history, epoch-change
// quorum sizing) generalizes through the *grid footprint* of a strategy:
// the (r, w) pair such that ANY r replicas intersect every write quorum and
// ANY w replicas intersect every read quorum, by counting.
//
// Used by the Reconfiguration Manager (validation, transition state), the
// SMR ConfigStateMachine (deterministic re-validation), the proxy (quorum
// drawing), and the consistency checker (intersection audit). Do not
// re-implement intersection logic elsewhere.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "kv/types.hpp"  // qopt-arch: export
#include "util/rng.hpp"

namespace qopt::kv {

/// Strict-quorum invariant of a uniform (r, w) grid over `replication`
/// replicas: intersection by counting requires r + w > n.
constexpr bool is_strict(const QuorumConfig& q, int replication) noexcept {
  return q.read_q >= 1 && q.write_q >= 1 && q.read_q <= replication &&
         q.write_q <= replication && q.read_q + q.write_q > replication;
}

/// Component-wise max; the transition quorum of Section 5.1 is
/// transition(old, new): it intersects the read and write quorums of both
/// configurations.
constexpr QuorumConfig transition(const QuorumConfig& a,
                                  const QuorumConfig& b) noexcept {
  return QuorumConfig{a.read_q > b.read_q ? a.read_q : b.read_q,
                      a.write_q > b.write_q ? a.write_q : b.write_q};
}

/// One candidate quorum of an explicit strategy: a sorted set of
/// placement-relative replica slots (indices into the object's replica
/// list, 0..n-1 — slot-based so one strategy serves every object) plus an
/// unnormalized selection weight.
struct WeightedQuorum {
  std::vector<std::uint32_t> members;
  double weight = 1.0;

  friend bool operator==(const WeightedQuorum&,
                         const WeightedQuorum&) = default;
};

/// A read-write quorum system plus a selection distribution over its
/// quorums. Two encodings (the wire-format version tag of PROTOCOL.md):
///
///   kMajority — the classic uniform (r, w) grid, carried compactly in
///     `grid`. Semantically identical to the pre-redesign QuorumConfig; the
///     implicit converting constructor keeps every existing call site and
///     serialized trace valid, and the proxy's majority path is
///     byte-identical to the pre-redesign behaviour (no RNG draw).
///   kExplicit — explicit weighted read/write quorum sets over `n` replica
///     slots, validated for pairwise read/write intersection. The proxy
///     draws a quorum from the selection distribution with its seeded RNG.
struct QuorumStrategy {
  enum class Kind : std::uint8_t { kMajority = 0, kExplicit = 1 };
  /// Bumped when the NEWQ/NEWEP strategy encoding changes shape; consumers
  /// reject payloads from the future (see docs/PROTOCOL.md).
  static constexpr std::uint8_t kWireVersion = 1;

  Kind kind = Kind::kMajority;
  QuorumConfig grid{1, 1};             // kMajority
  int n = 0;                           // kExplicit: replication degree
  std::vector<WeightedQuorum> reads;   // kExplicit
  std::vector<WeightedQuorum> writes;  // kExplicit

  QuorumStrategy() = default;
  /// Implicit by design: the majority-grid compatibility path. Every
  /// QuorumConfig is the majority strategy of the same (r, w).
  QuorumStrategy(QuorumConfig q) : grid(q) {}  // NOLINT(runtime/explicit)

  /// Named factory for the uniform grid (the blessed construction path —
  /// qopt_lint validates its arguments like a literal). `n` is checked when
  /// > 0 but not stored: majority strategies compare equal regardless of
  /// the replication degree they were validated against.
  static QuorumStrategy majority(int r, int w, int n = 0);
  /// Explicit weighted quorum system over `n` replica slots. Members are
  /// sorted and weights must be positive; `valid()` checks intersection.
  static QuorumStrategy explicit_sets(int n, std::vector<WeightedQuorum> reads,
                                      std::vector<WeightedQuorum> writes);

  bool is_majority() const noexcept { return kind == Kind::kMajority; }

  /// Smallest read / write quorum cardinality of the strategy.
  int min_read_size() const noexcept;
  int min_write_size() const noexcept;

  /// Grid footprint: ANY read_footprint() replicas intersect every write
  /// quorum of the strategy (and symmetrically), by counting. For a
  /// majority strategy this is exactly the grid, so every size-based
  /// protocol rule (transition quorums, read-repair history, epoch-change
  /// sizing) reduces to the pre-redesign behaviour on majority strategies.
  int read_footprint() const noexcept;
  int write_footprint() const noexcept;
  QuorumConfig footprint() const noexcept {
    return QuorumConfig{read_footprint(), write_footprint()};
  }

  /// Draws a quorum from the selection distribution (kExplicit only; the
  /// proxy's majority path never touches the RNG — replay compatibility).
  const WeightedQuorum& sample_read(Rng& rng) const;
  const WeightedQuorum& sample_write(Rng& rng) const;

  /// Full validity check against a replication degree: strictness for
  /// majority grids; for explicit systems, pairwise read/write intersection,
  /// well-formed members and weights, and counting compositionality
  /// (min_read_size() + min_write_size() <= n + 1) so that two
  /// footprint-completed operations are themselves guaranteed to intersect
  /// — the proxy's counting completion path depends on it.
  bool valid(int replication) const;

  /// Compact human-readable form, e.g. "majority(r=3,w=3)" or
  /// "explicit(n=5,reads=3,writes=6)".
  std::string describe() const;

  friend bool operator==(const QuorumStrategy&,
                         const QuorumStrategy&) = default;
};

/// True when every member set of `a` intersects every member set of `b`
/// (the pairwise rule an explicit strategy must satisfy).
bool quorums_intersect(const std::vector<WeightedQuorum>& a,
                       const std::vector<WeightedQuorum>& b);

/// True when the two sorted slot sets share at least one element.
bool sets_intersect(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b);

/// Transition strategy of a reconfiguration old -> next: the component-wise
/// max of the two grid footprints, expressed as a majority strategy. Any
/// quorum of the transition intersects every read and write quorum of both
/// strategies (cross-product intersection by counting); for two majority
/// strategies this is exactly the paper's component-wise max rule.
QuorumStrategy transition(const QuorumStrategy& a, const QuorumStrategy& b);

/// A reconfiguration payload: either a new store-wide default strategy
/// (the "tail"/global configuration) or a batch of per-object overrides
/// (the fine-grain top-k optimization of Section 5.4). Majority-grid
/// changes are exactly the pre-redesign payloads.
struct QuorumChange {
  bool is_global = true;
  QuorumStrategy global;  // valid when is_global
  std::vector<std::pair<ObjectId, QuorumStrategy>> overrides;  // otherwise
};

/// Validation shared by the Reconfiguration Manager and the replicated
/// ConfigStateMachine (every replica must agree on rejections).
bool validate_change(const QuorumChange& change, int replication);

/// Complete quorum state as known by the Reconfiguration Manager. Carried on
/// NEWEP messages (and echoed in storage NACKs) so that a proxy that missed
/// an arbitrary number of reconfigurations while falsely suspected can
/// resynchronize in one step — including the read-quorum history needed by
/// the Algorithm-4 repair path (see DESIGN.md, deviation notes).
struct FullConfig {
  std::uint64_t epno = 0;
  std::uint64_t cfno = 0;
  QuorumStrategy default_q{QuorumConfig{1, 1}};
  std::vector<std::pair<ObjectId, QuorumStrategy>> overrides;
  /// For each installed configuration number, the maximum read-quorum
  /// *footprint* in force at that configuration (across the default and all
  /// overrides); monotone prefix used by the read-repair rule. Sorted by
  /// cfno ascending.
  std::vector<std::pair<std::uint64_t, int>> read_q_history;
  /// Set on the payload of a phase-1 epoch change: default_q/overrides hold
  /// the *transition* quorums of an in-flight reconfiguration, and `pending`
  /// is the change a resynchronizing proxy must commit when the matching
  /// CONFIRM arrives (or when a later configuration supersedes it).
  bool transitional = false;
  QuorumChange pending;
};

}  // namespace qopt::kv
