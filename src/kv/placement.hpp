// Replica placement: maps each object to its fixed set of N distinct storage
// nodes. Mirrors Swift's default distribution policy as used in the paper:
// "scatters object replicas randomly across the storage nodes (while
// enforcing that replicas of the same object are placed on different
// nodes)".
//
// Implemented with rendezvous (highest-random-weight) hashing, which is
// deterministic, uniform, and needs no stored ring state.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/types.hpp"

namespace qopt::kv {

class Placement {
 public:
  Placement(std::uint32_t num_storage_nodes, int replication_degree,
            std::uint64_t seed = 0);

  /// Storage node indices holding replicas of `oid`, in a deterministic
  /// order (descending rendezvous weight). Size == replication degree.
  std::vector<std::uint32_t> replicas(ObjectId oid) const;

  /// As replicas(), but writes into `out`, reusing its capacity — the
  /// per-operation placement lookup on the proxy data plane stays
  /// allocation-free once the vector is warm.
  void replicas_into(ObjectId oid, std::vector<std::uint32_t>& out) const;

  std::uint32_t num_storage_nodes() const noexcept { return num_nodes_; }
  int replication_degree() const noexcept { return replication_; }

 private:
  struct Weighted {
    std::uint64_t weight;
    std::uint32_t node;
  };

  std::uint32_t num_nodes_;
  int replication_;
  std::uint64_t seed_;
  /// Scratch for the rendezvous weights, reused across calls so the
  /// placement lookup does not allocate per operation. Placement is only
  /// ever used from the single-threaded simulation loop.
  mutable std::vector<Weighted> weights_;
};

}  // namespace qopt::kv
