#include "util/rng.hpp"
#include "util/time.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qopt::workload {

RecordingSource::RecordingSource(std::shared_ptr<OperationSource> inner)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("RecordingSource: null inner");
}

Operation RecordingSource::next(Rng& rng, Time now) {
  const Operation op = inner_->next(rng, now);
  trace_.push_back(TraceEntry{now, op});
  return op;
}

std::string RecordingSource::describe() const {
  return "recording(" + inner_->describe() + ")";
}

TraceSource::TraceSource(std::vector<TraceEntry> trace, bool loop)
    : trace_(std::move(trace)), loop_(loop) {
  if (trace_.empty()) throw std::invalid_argument("TraceSource: empty trace");
}

Operation TraceSource::next(Rng& /*rng*/, Time /*now*/) {
  const Operation op = trace_[position_].op;
  if (position_ + 1 < trace_.size()) {
    ++position_;
  } else if (loop_) {
    position_ = 0;
  }
  return op;
}

std::string TraceSource::describe() const {
  return "trace(" + std::to_string(trace_.size()) + " ops)";
}

void save_trace(const std::string& path,
                const std::vector<TraceEntry>& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace: cannot open " + path);
  out << "at_ns,oid,is_write,size_bytes\n";
  for (const TraceEntry& entry : trace) {
    out << entry.at << ',' << entry.op.oid << ','
        << (entry.op.is_write ? 1 : 0) << ',' << entry.op.size_bytes << '\n';
  }
}

std::vector<TraceEntry> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  std::vector<TraceEntry> trace;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    TraceEntry entry;
    char comma;
    int is_write = 0;
    row >> entry.at >> comma >> entry.op.oid >> comma >> is_write >> comma >>
        entry.op.size_bytes;
    if (row.fail()) throw std::runtime_error("load_trace: corrupt row");
    entry.op.is_write = is_write != 0;
    trace.push_back(entry);
  }
  return trace;
}

}  // namespace qopt::workload
