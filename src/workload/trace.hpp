// Workload trace capture and replay.
//
// Records the operation stream a generator (or a production system) emits
// and replays it later — the standard methodology for benchmarking against
// captured traces (e.g. the Dropbox traces of [14]) and for reproducing a
// problematic workload exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

namespace qopt::workload {

struct TraceEntry {
  Time at = 0;  // virtual time the operation was issued
  Operation op;
};

/// Decorator: passes through an inner source while recording every emitted
/// operation with its issue time.
class RecordingSource final : public OperationSource {
 public:
  explicit RecordingSource(std::shared_ptr<OperationSource> inner);

  Operation next(Rng& rng, Time now) override;
  std::string describe() const override;

  const std::vector<TraceEntry>& trace() const noexcept { return trace_; }
  std::vector<TraceEntry> take_trace() { return std::move(trace_); }

 private:
  std::shared_ptr<OperationSource> inner_;
  std::vector<TraceEntry> trace_;
};

/// Replays a recorded trace in order. With `loop` set the trace wraps
/// around once exhausted; otherwise the final operation repeats (keeping
/// closed-loop clients well defined).
class TraceSource final : public OperationSource {
 public:
  explicit TraceSource(std::vector<TraceEntry> trace, bool loop = true);

  Operation next(Rng& rng, Time now) override;
  std::string describe() const override;

  std::size_t position() const noexcept { return position_; }
  std::size_t size() const noexcept { return trace_.size(); }

 private:
  std::vector<TraceEntry> trace_;
  bool loop_;
  std::size_t position_ = 0;
};

/// CSV persistence (at_ns,oid,is_write,size_bytes).
void save_trace(const std::string& path,
                const std::vector<TraceEntry>& trace);
std::vector<TraceEntry> load_trace(const std::string& path);

}  // namespace qopt::workload
