#include "kv/types.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace qopt::workload {

// ------------------------------------------------------------------- keys

UniformKeys::UniformKeys(std::uint64_t num_keys) : num_keys_(num_keys) {
  if (num_keys == 0) throw std::invalid_argument("UniformKeys: empty space");
}

kv::ObjectId UniformKeys::sample(Rng& rng) {
  return rng.next_below(num_keys_);
}

namespace {
double zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

ZipfianKeys::ZipfianKeys(std::uint64_t num_keys, double theta, bool scramble)
    : num_keys_(num_keys), theta_(theta), scramble_(scramble) {
  if (num_keys == 0) throw std::invalid_argument("ZipfianKeys: empty space");
  if (theta <= 0 || theta >= 1) {
    throw std::invalid_argument("ZipfianKeys: theta must be in (0,1)");
  }
  zetan_ = zeta(num_keys_, theta_);
  zeta2_ = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

kv::ObjectId ZipfianKeys::sample(Rng& rng) {
  // Gray et al. "Quickly generating billion-record synthetic databases",
  // as used by YCSB's ZipfianGenerator.
  const double u = rng.next_double();
  const double uz = u * zetan_;
  std::uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 1;
  } else {
    rank = static_cast<std::uint64_t>(
        static_cast<double>(num_keys_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= num_keys_) rank = num_keys_ - 1;
  }
  if (!scramble_) return rank;
  return mix64(rank) % num_keys_;
}

HotspotKeys::HotspotKeys(std::uint64_t num_keys, double hot_fraction,
                         double hot_ratio)
    : num_keys_(num_keys), hot_ratio_(hot_ratio) {
  if (num_keys == 0) throw std::invalid_argument("HotspotKeys: empty space");
  hot_keys_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(hot_fraction *
                                    static_cast<double>(num_keys)));
  if (hot_keys_ > num_keys_) hot_keys_ = num_keys_;
}

kv::ObjectId HotspotKeys::sample(Rng& rng) {
  if (rng.chance(hot_ratio_) || hot_keys_ == num_keys_) {
    return rng.next_below(hot_keys_);
  }
  return hot_keys_ + rng.next_below(num_keys_ - hot_keys_);
}

// ------------------------------------------------------------------ sizes

std::uint64_t SizeDistribution::sample(Rng& rng) const {
  switch (kind) {
    case Kind::kFixed:
      return fixed;
    case Kind::kUniform:
      return lo + rng.next_below(hi > lo ? hi - lo + 1 : 1);
  }
  return fixed;
}

// ---------------------------------------------------------------- sources

BasicWorkload::BasicWorkload(WorkloadSpec spec) : spec_(std::move(spec)) {
  if (!spec_.keys) throw std::invalid_argument("BasicWorkload: null keys");
}

Operation BasicWorkload::next(Rng& rng, Time /*now*/) {
  Operation op;
  op.oid = spec_.key_offset + spec_.keys->sample(rng);
  op.is_write = rng.chance(spec_.write_ratio);
  op.size_bytes = spec_.sizes.sample(rng);
  return op;
}

InsertingWorkload::InsertingWorkload(Spec spec)
    : spec_(spec), next_key_(spec.initial_keys) {
  if (spec_.initial_keys == 0) {
    throw std::invalid_argument("InsertingWorkload: need initial keys");
  }
}

kv::ObjectId InsertingWorkload::sample_recent(Rng& rng) {
  // Approximate zipfian-over-recency: rank r (0 = newest) has probability
  // ~ r^-theta, sampled by inverse transform over the continuous
  // approximation (exact zeta tables are impractical for a growing n).
  const double u = rng.next_double();
  const double n = static_cast<double>(next_key_);
  const double rank =
      std::pow(u, 1.0 / (1.0 - spec_.theta)) * n;  // heavy mass near 0
  auto offset = static_cast<std::uint64_t>(rank);
  if (offset >= next_key_) offset = next_key_ - 1;
  return spec_.key_offset + (next_key_ - 1 - offset);
}

Operation InsertingWorkload::next(Rng& rng, Time /*now*/) {
  Operation op;
  op.size_bytes = spec_.sizes.sample(rng);
  if (rng.chance(spec_.insert_ratio)) {
    op.is_write = true;
    op.oid = spec_.key_offset + next_key_++;
    return op;
  }
  op.oid = sample_recent(rng);
  op.is_write = rng.chance(spec_.write_ratio);
  return op;
}

PhasedWorkload::PhasedWorkload(std::vector<Phase> phases, bool cycle)
    : phases_(std::move(phases)), cycle_(cycle) {
  if (phases_.empty()) {
    throw std::invalid_argument("PhasedWorkload: no phases");
  }
  for (const Phase& phase : phases_) {
    if (phase.duration <= 0 || !phase.source) {
      throw std::invalid_argument("PhasedWorkload: invalid phase");
    }
    total_ += phase.duration;
  }
}

std::size_t PhasedWorkload::phase_at(Time now) const {
  Time t = now;
  if (cycle_) {
    t = now % total_;
  } else if (now >= total_) {
    return phases_.size() - 1;
  }
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (t < phases_[i].duration) return i;
    t -= phases_[i].duration;
  }
  return phases_.size() - 1;
}

Operation PhasedWorkload::next(Rng& rng, Time now) {
  return phases_[phase_at(now)].source->next(rng, now);
}

std::string PhasedWorkload::describe() const {
  std::string out = "phased(";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (i) out += ",";
    out += phases_[i].source->describe();
  }
  return out + ")";
}

// ---------------------------------------------------------------- presets

namespace {
std::shared_ptr<OperationSource> make_preset(double write_ratio,
                                             std::uint64_t num_keys,
                                             std::uint64_t object_bytes,
                                             kv::ObjectId key_offset,
                                             std::string name,
                                             bool zipfian = true) {
  WorkloadSpec spec;
  spec.write_ratio = write_ratio;
  if (zipfian) {
    spec.keys = std::make_shared<ZipfianKeys>(num_keys);
  } else {
    spec.keys = std::make_shared<UniformKeys>(num_keys);
  }
  spec.sizes = SizeDistribution::fixed_size(object_bytes);
  spec.key_offset = key_offset;
  spec.name = std::move(name);
  return std::make_shared<BasicWorkload>(std::move(spec));
}
}  // namespace

std::shared_ptr<OperationSource> ycsb_a(std::uint64_t num_keys,
                                        std::uint64_t object_bytes,
                                        kv::ObjectId key_offset) {
  return make_preset(0.50, num_keys, object_bytes, key_offset, "ycsb-a");
}

std::shared_ptr<OperationSource> ycsb_b(std::uint64_t num_keys,
                                        std::uint64_t object_bytes,
                                        kv::ObjectId key_offset) {
  return make_preset(0.05, num_keys, object_bytes, key_offset, "ycsb-b");
}

std::shared_ptr<OperationSource> backup_c(std::uint64_t num_keys,
                                          std::uint64_t object_bytes,
                                          kv::ObjectId key_offset) {
  return make_preset(0.99, num_keys, object_bytes, key_offset, "backup-c");
}

std::shared_ptr<OperationSource> sweep_point(double write_ratio,
                                             std::uint64_t object_bytes,
                                             std::uint64_t num_keys,
                                             kv::ObjectId key_offset) {
  return make_preset(write_ratio, num_keys, object_bytes, key_offset,
                     "sweep(w=" + std::to_string(write_ratio) + ")",
                     /*zipfian=*/false);
}

}  // namespace qopt::workload
