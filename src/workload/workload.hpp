// Workload generation: key popularity distributions, read/write mixes and
// object-size distributions, with presets for the workloads used in the
// paper's evaluation:
//   * YCSB Workload A — 50% reads / 50% writes, zipfian keys ("session
//     store");
//   * YCSB Workload B — 95% reads, zipfian keys ("photo tagging");
//   * Workload C (paper) — 99% writes ("backup service" / personal file
//     storage with upload-only users [14]);
// plus uniform/hotspot/latest distributions, time-varying phase schedules
// (the Dropbox commute pattern from the introduction) and per-tenant key
// namespaces for multi-tenant scenarios.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kv/types.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace qopt::workload {

struct Operation {
  kv::ObjectId oid = 0;
  bool is_write = false;
  std::uint64_t size_bytes = 0;  // meaningful for writes
};

// ------------------------------------------------------------------- keys

class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;
  virtual kv::ObjectId sample(Rng& rng) = 0;
  virtual std::uint64_t key_space() const = 0;
};

class UniformKeys final : public KeyDistribution {
 public:
  explicit UniformKeys(std::uint64_t num_keys);
  kv::ObjectId sample(Rng& rng) override;
  std::uint64_t key_space() const override { return num_keys_; }

 private:
  std::uint64_t num_keys_;
};

/// YCSB-style zipfian generator (Gray et al.'s method, O(1) sampling after
/// an O(n) zeta precomputation). `scramble` hashes ranks over the key space
/// so popular keys are not clustered at low ids (YCSB's default behaviour).
class ZipfianKeys final : public KeyDistribution {
 public:
  explicit ZipfianKeys(std::uint64_t num_keys, double theta = 0.99,
                       bool scramble = true);
  kv::ObjectId sample(Rng& rng) override;
  std::uint64_t key_space() const override { return num_keys_; }

 private:
  std::uint64_t num_keys_;
  double theta_;
  bool scramble_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

/// Hotspot distribution: `hot_ratio` of operations hit the first
/// `hot_fraction` of the key space uniformly; the rest spread uniformly
/// over the remainder.
class HotspotKeys final : public KeyDistribution {
 public:
  HotspotKeys(std::uint64_t num_keys, double hot_fraction, double hot_ratio);
  kv::ObjectId sample(Rng& rng) override;
  std::uint64_t key_space() const override { return num_keys_; }

 private:
  std::uint64_t num_keys_;
  std::uint64_t hot_keys_;
  double hot_ratio_;
};

// ------------------------------------------------------------------ sizes

struct SizeDistribution {
  enum class Kind { kFixed, kUniform };
  Kind kind = Kind::kFixed;
  std::uint64_t fixed = 4096;
  std::uint64_t lo = 1024;
  std::uint64_t hi = 65536;

  static SizeDistribution fixed_size(std::uint64_t bytes) {
    SizeDistribution d;
    d.kind = Kind::kFixed;
    d.fixed = bytes;
    return d;
  }
  static SizeDistribution uniform(std::uint64_t lo, std::uint64_t hi) {
    SizeDistribution d;
    d.kind = Kind::kUniform;
    d.lo = lo;
    d.hi = hi;
    return d;
  }
  std::uint64_t sample(Rng& rng) const;
};

// ---------------------------------------------------------------- sources

/// Stream of operations consumed by a (closed-loop) client driver.
class OperationSource {
 public:
  virtual ~OperationSource() = default;
  virtual Operation next(Rng& rng, Time now) = 0;
  virtual std::string describe() const = 0;
};

struct WorkloadSpec {
  double write_ratio = 0.5;
  std::shared_ptr<KeyDistribution> keys;
  SizeDistribution sizes;
  kv::ObjectId key_offset = 0;  // tenant namespace base
  std::string name = "custom";
};

class BasicWorkload final : public OperationSource {
 public:
  explicit BasicWorkload(WorkloadSpec spec);
  Operation next(Rng& rng, Time now) override;
  std::string describe() const override { return spec_.name; }
  const WorkloadSpec& spec() const noexcept { return spec_; }

 private:
  WorkloadSpec spec_;
};

/// YCSB's "latest" behaviour for insert-heavy applications: the key space
/// grows over time (each insert appends a key) and non-insert operations
/// skew zipfian toward the most recently inserted keys — the
/// upload-then-share pattern of personal file storage [14].
class InsertingWorkload final : public OperationSource {
 public:
  struct Spec {
    double insert_ratio = 0.2;   // fraction of ops creating a new object
    double write_ratio = 0.1;    // overwrites among non-insert ops
    std::uint64_t initial_keys = 1000;
    kv::ObjectId key_offset = 0;
    double theta = 0.99;         // recency skew
    SizeDistribution sizes;
  };

  explicit InsertingWorkload(Spec spec);
  Operation next(Rng& rng, Time now) override;
  std::string describe() const override { return "inserting-latest"; }
  std::uint64_t keys_inserted() const noexcept {
    return next_key_ - spec_.initial_keys;
  }
  std::uint64_t key_count() const noexcept { return next_key_; }

 private:
  kv::ObjectId sample_recent(Rng& rng);

  Spec spec_;
  std::uint64_t next_key_;
};

/// Cycles through phases of fixed (virtual-time) duration; models workloads
/// whose profile shifts over time, e.g. Dropbox users alternating between
/// read-intensive and upload-only periods [14].
class PhasedWorkload final : public OperationSource {
 public:
  struct Phase {
    Duration duration = 0;
    std::shared_ptr<OperationSource> source;
  };

  explicit PhasedWorkload(std::vector<Phase> phases, bool cycle = true);
  Operation next(Rng& rng, Time now) override;
  std::string describe() const override;
  /// Phase index active at `now` (for trace annotation).
  std::size_t phase_at(Time now) const;

 private:
  std::vector<Phase> phases_;
  bool cycle_;
  Duration total_ = 0;
};

// ---------------------------------------------------------------- presets

std::shared_ptr<OperationSource> ycsb_a(std::uint64_t num_keys,
                                        std::uint64_t object_bytes = 4096,
                                        kv::ObjectId key_offset = 0);
std::shared_ptr<OperationSource> ycsb_b(std::uint64_t num_keys,
                                        std::uint64_t object_bytes = 4096,
                                        kv::ObjectId key_offset = 0);
/// The paper's write-intensive "backup service" workload (99% writes).
std::shared_ptr<OperationSource> backup_c(std::uint64_t num_keys,
                                          std::uint64_t object_bytes = 4096,
                                          kv::ObjectId key_offset = 0);
/// Parametric workload used for the 170-point sweep of Figure 3.
std::shared_ptr<OperationSource> sweep_point(double write_ratio,
                                             std::uint64_t object_bytes,
                                             std::uint64_t num_keys,
                                             kv::ObjectId key_offset = 0);

}  // namespace qopt::workload
