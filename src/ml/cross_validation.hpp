// k-fold cross-validation for the Oracle's classifier, used both by tests
// and by the oracle-accuracy benchmark (Eval-D in DESIGN.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace qopt::ml {

struct CvResult {
  std::size_t total = 0;
  std::size_t correct = 0;            // exact class match
  std::size_t within_one = 0;         // |predicted - actual| <= 1
  std::vector<std::vector<std::size_t>> confusion;  // [actual][predicted]

  double accuracy() const {
    return total ? static_cast<double>(correct) / static_cast<double>(total)
                 : 0.0;
  }
  double within_one_accuracy() const {
    return total
               ? static_cast<double>(within_one) / static_cast<double>(total)
               : 0.0;
  }
};

/// Runs k-fold cross-validation with a deterministic shuffle.
CvResult cross_validate(const Dataset& data, std::size_t folds,
                        const TreeParams& params = {},
                        std::uint64_t seed = 42);

namespace detail {
/// Deterministic shuffled index order shared by all CV variants.
std::vector<std::size_t> shuffled_indices(std::size_t n, std::uint64_t seed);
}  // namespace detail

/// Generic k-fold cross-validation over any model with
/// `train(Dataset, Params)` and `int predict(span<const double>)`
/// (DecisionTree, BoostedTrees, ...).
template <typename Model, typename Params>
CvResult cross_validate_model(const Dataset& data, std::size_t folds,
                              const Params& params, std::uint64_t seed = 42) {
  if (folds < 2 || data.size() < folds) {
    throw std::invalid_argument("cross_validate_model: bad folds/rows");
  }
  const std::vector<std::size_t> order =
      detail::shuffled_indices(data.size(), seed);
  CvResult result;
  const auto classes = static_cast<std::size_t>(data.num_classes());
  result.confusion.assign(classes, std::vector<std::size_t>(classes, 0));
  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < order.size(); ++i) {
      (i % folds == fold ? test_rows : train_rows).push_back(order[i]);
    }
    Model model;
    model.train(data.subset(train_rows), params);
    for (std::size_t r : test_rows) {
      const int predicted = model.predict(data.row(r));
      const int actual = data.label(r);
      ++result.total;
      if (predicted == actual) ++result.correct;
      if (predicted - actual <= 1 && actual - predicted <= 1) {
        ++result.within_one;
      }
      ++result.confusion[static_cast<std::size_t>(actual)]
                        [static_cast<std::size_t>(predicted)];
    }
  }
  return result;
}

}  // namespace qopt::ml
