#include "ml/dataset.hpp"

#include <cassert>
#include <stdexcept>

namespace qopt::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {}

void Dataset::add_row(std::span<const double> features, int label) {
  if (features.size() != num_features()) {
    throw std::invalid_argument("Dataset::add_row: feature arity mismatch");
  }
  if (label < 0) {
    throw std::invalid_argument("Dataset::add_row: negative label");
  }
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label);
  if (label + 1 > num_classes_) num_classes_ = label + 1;
}

void Dataset::add_row(std::initializer_list<double> features, int label) {
  add_row(std::span<const double>(features.begin(), features.size()), label);
}

std::span<const double> Dataset::row(std::size_t i) const {
  return {values_.data() + i * num_features(), num_features()};
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_names_);
  for (std::size_t i : indices) out.add_row(row(i), label(i));
  return out;
}

}  // namespace qopt::ml
