// AdaBoost.M1 over decision trees — the boosting that distinguishes C5.0
// from its ancestor C4.5. Implemented with weighted resampling (each round
// trains a tree on a bootstrap sample drawn proportionally to the current
// example weights), which leaves the base learner unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace qopt::ml {

struct BoostParams {
  std::size_t rounds = 10;
  TreeParams tree;
  std::uint64_t seed = 7;  // resampling determinism
};

class BoostedTrees {
 public:
  void train(const Dataset& data, const BoostParams& params = {});

  /// Weighted-vote prediction across the ensemble.
  int predict(std::span<const double> features) const;

  /// Per-class cumulative vote weights (unnormalized).
  std::vector<double> predict_votes(std::span<const double> features) const;

  bool trained() const noexcept { return !trees_.empty(); }
  std::size_t rounds_used() const noexcept { return trees_.size(); }

 private:
  std::vector<DecisionTree> trees_;
  std::vector<double> alphas_;
  int num_classes_ = 0;
};

}  // namespace qopt::ml
