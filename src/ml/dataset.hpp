// Tabular dataset for the Oracle's decision-tree learner: numeric features,
// integer class labels (for Q-OPT, the label is the optimal write-quorum
// size of a workload).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace qopt::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names);

  void add_row(std::span<const double> features, int label);
  void add_row(std::initializer_list<double> features, int label);

  std::size_t size() const noexcept { return labels_.size(); }
  bool empty() const noexcept { return labels_.empty(); }
  std::size_t num_features() const noexcept { return feature_names_.size(); }
  int num_classes() const noexcept { return num_classes_; }

  std::span<const double> row(std::size_t i) const;
  int label(std::size_t i) const { return labels_[i]; }
  double feature(std::size_t row, std::size_t col) const {
    return values_[row * num_features() + col];
  }

  const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }

  /// Sub-dataset containing the given row indices (used for CV folds).
  Dataset subset(std::span<const std::size_t> indices) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> values_;  // row-major
  std::vector<int> labels_;
  int num_classes_ = 0;
};

}  // namespace qopt::ml
