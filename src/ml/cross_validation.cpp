#include "ml/cross_validation.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "util/rng.hpp"

namespace qopt::ml {

namespace detail {
std::vector<std::size_t> shuffled_indices(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  return order;
}
}  // namespace detail

CvResult cross_validate(const Dataset& data, std::size_t folds,
                        const TreeParams& params, std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument("cross_validate: folds < 2");
  if (data.size() < folds) {
    throw std::invalid_argument("cross_validate: fewer rows than folds");
  }

  const std::vector<std::size_t> order =
      detail::shuffled_indices(data.size(), seed);

  CvResult result;
  const auto classes = static_cast<std::size_t>(data.num_classes());
  result.confusion.assign(classes, std::vector<std::size_t>(classes, 0));

  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < order.size(); ++i) {
      (i % folds == fold ? test_rows : train_rows).push_back(order[i]);
    }
    DecisionTree tree;
    tree.train(data.subset(train_rows), params);
    for (std::size_t r : test_rows) {
      const int predicted = tree.predict(data.row(r));
      const int actual = data.label(r);
      ++result.total;
      if (predicted == actual) ++result.correct;
      if (std::abs(predicted - actual) <= 1) ++result.within_one;
      if (static_cast<std::size_t>(actual) < classes &&
          static_cast<std::size_t>(predicted) < classes) {
        ++result.confusion[static_cast<std::size_t>(actual)]
                          [static_cast<std::size_t>(predicted)];
      }
    }
  }
  return result;
}

}  // namespace qopt::ml
