#include "ml/boosting.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "util/rng.hpp"

namespace qopt::ml {

namespace {

/// Draws `n` indices with replacement, probability proportional to
/// `weights` (inverse-CDF sampling over the cumulative weight vector).
std::vector<std::size_t> weighted_bootstrap(const std::vector<double>& weights,
                                            std::size_t n, Rng& rng) {
  std::vector<double> cumulative(weights.size());
  std::partial_sum(weights.begin(), weights.end(), cumulative.begin());
  const double total = cumulative.back();
  std::vector<std::size_t> sample;
  sample.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.next_double() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), u);
    sample.push_back(
        static_cast<std::size_t>(std::distance(cumulative.begin(), it)));
  }
  return sample;
}

}  // namespace

void BoostedTrees::train(const Dataset& data, const BoostParams& params) {
  if (data.empty()) throw std::invalid_argument("BoostedTrees: empty dataset");
  trees_.clear();
  alphas_.clear();
  num_classes_ = data.num_classes();

  const std::size_t n = data.size();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  Rng rng(params.seed);

  for (std::size_t round = 0; round < params.rounds; ++round) {
    DecisionTree tree;
    if (round == 0) {
      // The first round sees the untouched dataset (uniform weights).
      tree.train(data, params.tree);
    } else {
      const std::vector<std::size_t> sample =
          weighted_bootstrap(weights, n, rng);
      tree.train(data.subset(sample), params.tree);
    }

    // Weighted training error on the full dataset.
    double err = 0;
    std::vector<bool> wrong(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      if (tree.predict(data.row(i)) != data.label(i)) {
        wrong[i] = true;
        err += weights[i];
      }
    }
    if (err >= 0.5) {
      // AdaBoost.M1 stopping rule: the weak learner is no better than
      // chance on the reweighted distribution.
      if (trees_.empty()) {
        trees_.push_back(std::move(tree));
        alphas_.push_back(1.0);
      }
      break;
    }
    const double bounded_err = std::max(err, 1e-9);
    const double beta = bounded_err / (1.0 - bounded_err);
    trees_.push_back(std::move(tree));
    alphas_.push_back(std::log(1.0 / beta));
    if (err <= 1e-12) break;  // perfect classifier: nothing left to boost

    // Down-weight correctly classified examples, renormalize.
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!wrong[i]) weights[i] *= beta;
      total += weights[i];
    }
    for (double& w : weights) w /= total;
  }
}

std::vector<double> BoostedTrees::predict_votes(
    std::span<const double> features) const {
  if (!trained()) throw std::logic_error("BoostedTrees: untrained");
  std::vector<double> votes(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const int predicted = trees_[t].predict(features);
    votes[static_cast<std::size_t>(predicted)] += alphas_[t];
  }
  return votes;
}

int BoostedTrees::predict(std::span<const double> features) const {
  const std::vector<double> votes = predict_votes(features);
  return static_cast<int>(std::distance(
      votes.begin(), std::max_element(votes.begin(), votes.end())));
}

}  // namespace qopt::ml
