#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace qopt::ml {

namespace {

double entropy(std::span<const double> counts, double total) {
  if (total <= 0) return 0.0;
  double h = 0.0;
  for (double c : counts) {
    if (c > 0) {
      const double p = c / total;
      h -= p * std::log2(p);
    }
  }
  return h;
}

/// C4.5 pessimistic upper bound on the error rate of a leaf that misclassifies
/// e of n examples, at normal deviate z (Witten & Frank's formulation of
/// Quinlan's estimate).
double pessimistic_error_rate(double e, double n, double z) {
  if (n <= 0) return 0.0;
  const double f = e / n;
  const double z2 = z * z;
  const double numerator =
      f + z2 / (2 * n) + z * std::sqrt(f / n - f * f / n + z2 / (4 * n * n));
  return std::min(1.0, numerator / (1 + z2 / n));
}

/// Inverse standard-normal CDF upper-tail deviate for confidence `cf`
/// (Acklam-style rational approximation is overkill; the CF range used in
/// practice is narrow, so use Beasley-Springer-Moro).
double normal_deviate(double cf) {
  // We need z such that P(Z > z) = cf, i.e. quantile(1 - cf).
  const double p = 1.0 - std::clamp(cf, 1e-6, 0.5);
  // Beasley-Springer-Moro approximation of the normal quantile.
  static const double a[] = {2.50662823884, -18.61500062529, 41.39119773534,
                             -25.44106049637};
  static const double b[] = {-8.47351093090, 23.08336743743, -21.06224101826,
                             3.13082909833};
  static const double c[] = {0.3374754822726147, 0.9761690190917186,
                             0.1607979714918209, 0.0276438810333863,
                             0.0038405729373609, 0.0003951896511919,
                             0.0000321767881768, 0.0000002888167364,
                             0.0000003960315187};
  const double y = p - 0.5;
  if (std::abs(y) < 0.42) {
    const double r = y * y;
    return y * (((a[3] * r + a[2]) * r + a[1]) * r + a[0]) /
           ((((b[3] * r + b[2]) * r + b[1]) * r + b[0]) * r + 1.0);
  }
  double r = p > 0.5 ? 1.0 - p : p;
  r = std::log(-std::log(r));
  double x = c[0];
  double rp = 1.0;
  for (int i = 1; i < 9; ++i) {
    rp *= r;
    x += c[i] * rp;
  }
  return p > 0.5 ? x : -x;
}

}  // namespace

void DecisionTree::train(const Dataset& data, const TreeParams& params) {
  if (data.empty()) throw std::invalid_argument("DecisionTree: empty dataset");
  nodes_.clear();
  num_classes_ = data.num_classes();
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), 0);
  root_ = build(data, rows, 0, params);
  if (params.prune) {
    const double z = normal_deviate(params.pruning_confidence);
    prune_subtree(root_, z);
  }
}

int DecisionTree::make_leaf(const Dataset& data,
                            std::span<const std::size_t> rows) {
  Node node;
  node.class_counts.assign(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t r : rows) {
    node.class_counts[static_cast<std::size_t>(data.label(r))] += 1.0;
  }
  node.label = static_cast<int>(std::distance(
      node.class_counts.begin(),
      std::max_element(node.class_counts.begin(), node.class_counts.end())));
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size() - 1);
}

DecisionTree::SplitChoice DecisionTree::choose_split(
    const Dataset& data, std::span<const std::size_t> rows,
    const TreeParams& params) const {
  const double total = static_cast<double>(rows.size());
  std::vector<double> parent_counts(static_cast<std::size_t>(num_classes_),
                                    0.0);
  for (std::size_t r : rows) {
    parent_counts[static_cast<std::size_t>(data.label(r))] += 1.0;
  }
  const double parent_entropy = entropy(parent_counts, total);
  if (parent_entropy <= 0) return {};

  struct Candidate {
    int feature;
    double threshold;
    double gain;
    double gain_ratio;
  };
  std::vector<Candidate> candidates;

  std::vector<std::size_t> order(rows.begin(), rows.end());
  std::vector<double> left_counts(static_cast<std::size_t>(num_classes_));

  for (std::size_t f = 0; f < data.num_features(); ++f) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.feature(a, f) < data.feature(b, f);
    });
    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    Candidate best{-1, 0.0, 0.0, 0.0};
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      left_counts[static_cast<std::size_t>(data.label(order[i]))] += 1.0;
      const double v = data.feature(order[i], f);
      const double v_next = data.feature(order[i + 1], f);
      if (v == v_next) continue;  // no boundary between equal values
      const auto n_left = static_cast<double>(i + 1);
      const double n_right = total - n_left;
      if (n_left < static_cast<double>(params.min_leaf) ||
          n_right < static_cast<double>(params.min_leaf)) {
        continue;
      }
      double h_left = entropy(left_counts, n_left);
      double h_right;
      {
        // right counts = parent - left
        double hr = 0.0;
        for (std::size_t c = 0; c < left_counts.size(); ++c) {
          const double rc = parent_counts[c] - left_counts[c];
          if (rc > 0) {
            const double p = rc / n_right;
            hr -= p * std::log2(p);
          }
        }
        h_right = hr;
      }
      const double gain = parent_entropy - (n_left / total) * h_left -
                          (n_right / total) * h_right;
      if (gain <= 1e-12) continue;
      const double pl = n_left / total;
      const double pr = n_right / total;
      const double split_info = -pl * std::log2(pl) - pr * std::log2(pr);
      const double ratio = split_info > 1e-12 ? gain / split_info : 0.0;
      if (ratio > best.gain_ratio) {
        best = Candidate{static_cast<int>(f), (v + v_next) / 2.0, gain,
                         ratio};
      }
    }
    if (best.feature >= 0) candidates.push_back(best);
  }

  if (candidates.empty()) return {};
  // C4.5 heuristic: restrict to candidates with at least average gain, then
  // maximize gain ratio (prevents the ratio favouring near-trivial splits).
  double mean_gain = 0.0;
  for (const Candidate& c : candidates) mean_gain += c.gain;
  mean_gain /= static_cast<double>(candidates.size());

  const Candidate* chosen = nullptr;
  for (const Candidate& c : candidates) {
    if (c.gain + 1e-12 >= mean_gain &&
        (!chosen || c.gain_ratio > chosen->gain_ratio)) {
      chosen = &c;
    }
  }
  if (!chosen) return {};
  return SplitChoice{chosen->feature, chosen->threshold, chosen->gain_ratio};
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& rows,
                        int depth, const TreeParams& params) {
  const bool pure = std::all_of(rows.begin(), rows.end(), [&](std::size_t r) {
    return data.label(r) == data.label(rows.front());
  });
  if (pure || rows.size() < params.min_split || depth >= params.max_depth) {
    return make_leaf(data, rows);
  }
  const SplitChoice split = choose_split(data, rows, params);
  if (!split.valid()) return make_leaf(data, rows);

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (std::size_t r : rows) {
    const auto col = static_cast<std::size_t>(split.feature);
    (data.feature(r, col) <= split.threshold ? left_rows : right_rows)
        .push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return make_leaf(data, rows);

  // Materialize this node's class counts before recursing (leaf helper
  // computes them for children).
  const int node_index = make_leaf(data, rows);
  const int left = build(data, left_rows, depth + 1, params);
  const int right = build(data, right_rows, depth + 1, params);
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  node.feature = split.feature;
  node.threshold = split.threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

double DecisionTree::prune_subtree(int node_index, double z) {
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  const double n = std::accumulate(node.class_counts.begin(),
                                   node.class_counts.end(), 0.0);
  const double errors_as_leaf =
      n - node.class_counts[static_cast<std::size_t>(node.label)];
  const double leaf_estimate = n * pessimistic_error_rate(errors_as_leaf, n, z);
  if (node.feature < 0) return leaf_estimate;

  const double subtree_estimate =
      prune_subtree(node.left, z) + prune_subtree(node.right, z);
  if (leaf_estimate <= subtree_estimate + 0.1) {
    // Collapse: the subtree's children become unreachable (kept in the pool;
    // acceptable for an in-memory model built once per training run).
    node.feature = -1;
    node.left = node.right = -1;
    return leaf_estimate;
  }
  return subtree_estimate;
}

int DecisionTree::predict(std::span<const double> features) const {
  if (!trained()) throw std::logic_error("DecisionTree::predict: untrained");
  int idx = root_;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.feature < 0) return node.label;
    const auto f = static_cast<std::size_t>(node.feature);
    idx = features[f] <= node.threshold ? node.left : node.right;
  }
}

std::vector<double> DecisionTree::predict_distribution(
    std::span<const double> features) const {
  if (!trained()) throw std::logic_error("DecisionTree: untrained");
  int idx = root_;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.feature < 0) return node.class_counts;
    const auto f = static_cast<std::size_t>(node.feature);
    idx = features[f] <= node.threshold ? node.left : node.right;
  }
}

std::size_t DecisionTree::leaf_count() const {
  // Count leaves reachable from the root (pruning can orphan nodes).
  std::size_t leaves = 0;
  std::vector<int> stack{root_};
  while (!stack.empty()) {
    const int idx = stack.back();
    stack.pop_back();
    if (idx < 0) continue;
    const Node& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.feature < 0) {
      ++leaves;
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return leaves;
}

int DecisionTree::depth_of(int node_index) const {
  if (node_index < 0) return 0;
  const Node& node = nodes_[static_cast<std::size_t>(node_index)];
  if (node.feature < 0) return 1;
  return 1 + std::max(depth_of(node.left), depth_of(node.right));
}

int DecisionTree::depth() const { return trained() ? depth_of(root_) : 0; }

void DecisionTree::print_node(int node_index, int indent,
                              const std::vector<std::string>& names,
                              std::string& out) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_index)];
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (node.feature < 0) {
    out += pad + "=> class " + std::to_string(node.label) + "\n";
    return;
  }
  const auto f = static_cast<std::size_t>(node.feature);
  const std::string name =
      f < names.size() ? names[f] : "f" + std::to_string(f);
  std::ostringstream thr;
  thr << node.threshold;
  out += pad + name + " <= " + thr.str() + ":\n";
  print_node(node.left, indent + 1, names, out);
  out += pad + name + " > " + thr.str() + ":\n";
  print_node(node.right, indent + 1, names, out);
}

std::string DecisionTree::to_string(
    const std::vector<std::string>& feature_names) const {
  if (!trained()) return "<untrained>";
  std::string out;
  print_node(root_, 0, feature_names, out);
  return out;
}

std::string DecisionTree::serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "qopt-dtree 1 " << num_classes_ << ' ' << root_ << ' '
      << nodes_.size() << '\n';
  for (const Node& node : nodes_) {
    out << node.feature << ' ' << node.threshold << ' ' << node.left << ' '
        << node.right << ' ' << node.label << ' ' << node.class_counts.size();
    for (double c : node.class_counts) out << ' ' << c;
    out << '\n';
  }
  return out.str();
}

DecisionTree DecisionTree::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  DecisionTree tree;
  std::size_t node_count = 0;
  in >> magic >> version >> tree.num_classes_ >> tree.root_ >> node_count;
  if (magic != "qopt-dtree" || version != 1 || !in) {
    throw std::invalid_argument("DecisionTree::deserialize: bad header");
  }
  tree.nodes_.resize(node_count);
  for (Node& node : tree.nodes_) {
    std::size_t counts = 0;
    in >> node.feature >> node.threshold >> node.left >> node.right >>
        node.label >> counts;
    node.class_counts.resize(counts);
    for (double& c : node.class_counts) in >> c;
  }
  if (!in) {
    throw std::invalid_argument("DecisionTree::deserialize: truncated");
  }
  // Structural validation: child indices in range, root valid.
  const auto in_range = [&](int idx) {
    return idx >= 0 && static_cast<std::size_t>(idx) < node_count;
  };
  if (node_count == 0 || !in_range(tree.root_)) {
    throw std::invalid_argument("DecisionTree::deserialize: bad root");
  }
  for (const Node& node : tree.nodes_) {
    if (node.feature >= 0 && (!in_range(node.left) || !in_range(node.right))) {
      throw std::invalid_argument("DecisionTree::deserialize: bad child");
    }
  }
  return tree;
}

}  // namespace qopt::ml
