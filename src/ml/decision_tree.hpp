// Decision-tree classifier in the C4.5/C5.0 family.
//
// Q-OPT's Oracle uses "a decision-tree classifier based on the C5.0
// algorithm [34]" as a black-box predictor of the optimal write-quorum size.
// C5.0 itself is proprietary; this is its direct ancestor C4.5 for numeric
// attributes: binary threshold splits chosen by gain ratio (among splits
// whose information gain is at least the average positive gain, as in
// Quinlan's formulation), with pessimistic error-based pruning at the C4.5
// default confidence factor.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace qopt::ml {

struct TreeParams {
  std::size_t min_leaf = 2;     // minimum examples on each side of a split
  std::size_t min_split = 4;    // minimum examples to attempt a split
  int max_depth = 32;
  bool prune = true;
  double pruning_confidence = 0.25;  // C4.5's default CF
};

class DecisionTree {
 public:
  /// Fits the tree; replaces any previous model.
  void train(const Dataset& data, const TreeParams& params = {});

  /// Predicts a class label; must be trained first.
  int predict(std::span<const double> features) const;

  /// Per-class vote distribution at the reached leaf (sums to the number of
  /// training examples at that leaf). Used to expose prediction confidence.
  std::vector<double> predict_distribution(
      std::span<const double> features) const;

  bool trained() const noexcept { return !nodes_.empty(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t leaf_count() const;
  int depth() const;

  /// Pretty-prints the tree using the dataset's feature names.
  std::string to_string(const std::vector<std::string>& feature_names) const;

  /// Compact line-oriented model persistence (train once, deploy the model
  /// file with the Oracle). Round-trips exactly.
  std::string serialize() const;
  static DecisionTree deserialize(const std::string& text);

 private:
  struct Node {
    // feature < 0 => leaf.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;   // feature value <= threshold
    int right = -1;  // feature value >  threshold
    int label = 0;   // majority class (valid for every node)
    std::vector<double> class_counts;
  };

  struct SplitChoice {
    int feature = -1;
    double threshold = 0.0;
    double gain_ratio = 0.0;
    bool valid() const noexcept { return feature >= 0; }
  };

  int build(const Dataset& data, std::vector<std::size_t>& rows, int depth,
            const TreeParams& params);
  SplitChoice choose_split(const Dataset& data,
                           std::span<const std::size_t> rows,
                           const TreeParams& params) const;
  int make_leaf(const Dataset& data, std::span<const std::size_t> rows);
  /// Error-based pruning; returns the subtree's estimated error count.
  double prune_subtree(int node_index, double z);
  int depth_of(int node_index) const;
  void print_node(int node_index, int indent,
                  const std::vector<std::string>& names,
                  std::string& out) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  int num_classes_ = 0;
};

}  // namespace qopt::ml
