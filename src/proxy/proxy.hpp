// Proxy process — Algorithms 3 (reconfiguration), 4 (read logic) and
// 5 (write logic) of the paper, extended with the per-object quorum table of
// Section 5.4 and the workload monitoring that feeds the Autonomic Manager
// (Section 4).
//
// Key behaviours:
//  * quorum reads/writes: operations are forwarded to a quorum-sized subset
//    of the object's replicas (rotated by a hash of the proxy identifier for
//    load balancing, Section 2.1) with a timeout fallback to the remaining
//    replicas;
//  * reads select the freshest returned version; if that version was written
//    under an older quorum configuration, the read is repeated with the
//    largest read quorum installed since (Algorithm 4), and the value is
//    written back under the current configuration;
//  * during a reconfiguration the proxy switches to the transition quorum
//    (component-wise max of old and new) and acknowledges the NEWQ message
//    only after draining operations issued under the old quorum;
//  * storage NACKs (stale epoch) resynchronize the proxy's full quorum state
//    and re-execute the operation in the new epoch;
//  * every client operation feeds a Space-Saving top-k summary, per-object
//    profiles for the currently monitored hotspot set, and the aggregate
//    tail profile reported to the Autonomic Manager each round.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "kv/placement.hpp"
#include "kv/quorum.hpp"
#include "kv/service_model.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topk/space_saving.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

#include <memory>
#include <string>

namespace qopt::proxy {

struct ProxyOptions {
  kv::QuorumConfig initial = kv::QuorumConfig::of(1, 1);  // overwritten by cluster wiring
  Duration fallback_timeout = milliseconds(150);
  std::size_t servers = 8;                 // proxy CPU cores
  Duration op_cost = microseconds(60);     // per-op proxy CPU time
  std::size_t topk_capacity = 128;         // Space-Saving summary size
  // Per-operation timeout/retransmit plane (at-least-once RPC; see
  // docs/ROBUSTNESS.md). After `retry_base * retry_multiplier^k` (+/- the
  // jitter fraction) with the quorum still unmet, the k-th round re-sends
  // the request — same op id, storage dedups — to every contacted replica
  // that has not answered. After `retry_budget` rounds the operation is
  // reported failed to the client. 0 disables retransmits (and with them
  // op failures: an op then waits forever, the pre-fault-plane behavior).
  int retry_budget = 6;
  Duration retry_base = milliseconds(250);
  double retry_multiplier = 2.0;
  double retry_jitter = 0.2;
};

/// Legacy aggregate view; the authoritative instruments live in the shared
/// `obs::MetricRegistry` under `proxy.<index>.*`.
struct ProxyStats {
  std::uint64_t client_reads = 0;
  std::uint64_t client_writes = 0;
  std::uint64_t not_found_reads = 0;
  std::uint64_t repair_reads = 0;   // Algorithm 4 second-phase reads
  std::uint64_t writebacks = 0;     // repaired values rewritten
  std::uint64_t nacks_received = 0;
  std::uint64_t op_retries = 0;     // re-executions after a NACK
  std::uint64_t fallbacks = 0;      // timeout fan-outs to remaining replicas
  std::uint64_t reconfigurations = 0;
  std::uint64_t retries = 0;           // timeout retransmit rounds
  std::uint64_t timeouts = 0;          // ops failed after the retry budget
  std::uint64_t duplicate_replies = 0; // replies ignored by replica dedup
  std::uint64_t restarts = 0;
};

/// Completion record surfaced to the metrics layer.
struct OpRecord {
  kv::ObjectId oid = 0;
  bool is_write = false;
  Time start = 0;
  Time end = 0;
  std::uint32_t proxy = 0;
  /// Configuration number the operation's quorum was drawn under (0 when
  /// unknown, e.g. client-side records). The intersection audit only
  /// compares operations of the same generation — across generations the
  /// protocol reasons via read_q_history and read repair, not via static
  /// intersection.
  std::uint64_t cfno = 0;
  /// Storage indices whose replies formed the quorum (sorted); feeds the
  /// consistency checker's read/write intersection audit.
  std::vector<std::uint32_t> quorum;
};

class Proxy {
 public:
  using Net = sim::Network<kv::Message>;
  using OpCallback = std::function<void(const OpRecord&)>;

  /// `obs` is the cluster-wide observability bundle; when null the proxy
  /// allocates a private one (stand-alone component tests).
  Proxy(sim::Simulator& sim, Net& net, sim::NodeId self,
        const kv::Placement& placement, const ProxyOptions& options,
        obs::Observability* obs = nullptr);

  void on_message(const sim::NodeId& from, const kv::Message& msg);

  void crash();
  /// Crash-recovery: rejoins the network after a crash. Quorum state
  /// (lepno/lcfno, default and override quorums) is durable; in-flight
  /// operations were lost with the crash. A restarted proxy left behind by
  /// an epoch change re-learns the current configuration through the first
  /// NACK it receives (Algorithm 6) before any of its operations complete.
  /// Heartbeats resume if they were enabled.
  void restart();
  bool crashed() const noexcept { return crashed_; }

  /// Invoked on every completed client operation (metrics wiring).
  void set_op_callback(OpCallback cb) { on_complete_ = std::move(cb); }

  /// Starts emitting periodic liveness beacons to `target` (the heartbeat
  /// failure-detector mode). Crashing stops the beats, as does pausing
  /// (tests use pausing to provoke organic false suspicions).
  void enable_heartbeats(sim::NodeId target, Duration interval);
  void set_heartbeats_paused(bool paused) { heartbeats_paused_ = paused; }
  /// Redirects the beats (RM leader failover); the running loop picks the
  /// new target up on its next tick.
  void set_heartbeat_target(sim::NodeId target) { hb_target_ = target; }

  // ------------------------------------------------------------ inspection
  std::uint64_t epoch() const noexcept { return lepno_; }
  std::uint64_t cfno() const noexcept { return lcfno_; }
  bool in_transition() const noexcept { return in_transition_; }
  kv::QuorumConfig default_quorum() const noexcept {
    return default_q_.footprint();
  }
  const kv::QuorumStrategy& default_strategy() const noexcept {
    return default_q_;
  }
  /// Grid footprint of the quorum used for `oid` right now (includes
  /// transition logic); the sizes legacy call sites reason about.
  kv::QuorumConfig effective_quorum(kv::ObjectId oid) const;
  /// Full strategy in force for `oid` (transition quorums while draining).
  kv::QuorumStrategy effective_strategy(kv::ObjectId oid) const;
  /// Observability bundle in use (the shared one, or the private fallback).
  obs::Observability& observability() noexcept { return *obs_; }
  const obs::Observability& observability() const noexcept { return *obs_; }
  [[deprecated("query the metric registry (proxy.<i>.*) instead")]]
  ProxyStats stats() const;
  std::size_t pending_ops() const noexcept { return ops_.size(); }
  std::size_t override_count() const noexcept { return overrides_.size(); }

 private:
  /// Ordered set of replica indices on a flat vector. Reply fan-in is a
  /// handful of replicas per operation, so a binary-searched vector beats a
  /// node-allocating tree on the per-reply hot path: the buffer is grown
  /// once per operation and reused verbatim across retransmit attempts.
  class ReplicaSet {
   public:
    /// Returns true when `v` was newly inserted (false: already present).
    bool insert(std::uint32_t v) {
      const auto it = std::lower_bound(members_.begin(), members_.end(), v);
      if (it != members_.end() && *it == v) return false;
      members_.insert(it, v);
      return true;
    }
    bool contains(std::uint32_t v) const noexcept {
      return std::binary_search(members_.begin(), members_.end(), v);
    }
    void clear() noexcept { members_.clear(); }
    void reserve(std::size_t n) { members_.reserve(n); }
    auto begin() const noexcept { return members_.begin(); }
    auto end() const noexcept { return members_.end(); }

   private:
    std::vector<std::uint32_t> members_;  // sorted ascending
  };

  struct PendingOp {
    enum class Kind { kRead, kWrite, kWriteBack };
    Kind kind = Kind::kRead;
    kv::ObjectId oid = 0;
    sim::NodeId client;            // kRead/kWrite only
    std::uint64_t client_req = 0;  // kRead/kWrite only
    std::uint64_t epno_used = 0;
    std::uint64_t cfno_used = 0;  // lcfno when the quorum was (re)drawn
    int needed = 0;    // replies required in the current phase
    int received = 0;  // replies gathered in the current phase
    /// Counting threshold: this many *distinct* replies intersect every
    /// quorum of the strategy regardless of which replicas they came from.
    /// Equals `needed` on the majority path; for an op issued under an
    /// explicit strategy it is the strategy's footprint — see quorum_met().
    int footprint_needed = 0;
    /// Node indices of the drawn explicit quorum (empty on the majority
    /// path): the fast completion set of quorum_met().
    std::vector<std::uint32_t> drawn;
    bool repair = false;
    bool any_found = false;
    kv::Version best;           // freshest version seen (reads)
    kv::Version write_version;  // payload (writes / write-backs)
    std::vector<std::uint32_t> replica_order;
    int contacted = 0;  // prefix of replica_order already contacted
    /// Replicas whose reply was counted this attempt (ordered: the
    /// retransmit path iterates it). Network-duplicated replies and replies
    /// to retransmits from an already-counted replica are dropped so a
    /// quorum is always `needed` *distinct* replicas.
    ReplicaSet replied;
    Time start_time = 0;
    bool drains = false;  // counts toward the current NEWQ drain

    // Span-layer state (all dormant when the op's trace is not sampled).
    obs::SpanContext trace_ctx;  // root span of the op's trace
    obs::SpanContext wait_span;  // current quorum-wait / repair-wait span
    // Open per-replica RPC spans as a replica-index-sorted flat vector
    // (ordered: crash teardown iterates it; empty whenever the op's trace
    // is unsampled, so the common path never allocates).
    std::vector<std::pair<std::uint32_t, obs::SpanContext>> rpc_spans;

    /// Open RPC span for `replica`, or nullptr.
    obs::SpanContext* find_rpc_span(std::uint32_t replica) {
      const auto it = std::lower_bound(
          rpc_spans.begin(), rpc_spans.end(), replica,
          [](const auto& entry, std::uint32_t r) { return entry.first < r; });
      if (it == rpc_spans.end() || it->first != replica) return nullptr;
      return &it->second;
    }
    void put_rpc_span(std::uint32_t replica, const obs::SpanContext& ctx) {
      const auto it = std::lower_bound(
          rpc_spans.begin(), rpc_spans.end(), replica,
          [](const auto& entry, std::uint32_t r) { return entry.first < r; });
      rpc_spans.insert(it, {replica, ctx});
    }
    void drop_rpc_span(std::uint32_t replica) {
      const auto it = std::lower_bound(
          rpc_spans.begin(), rpc_spans.end(), replica,
          [](const auto& entry, std::uint32_t r) { return entry.first < r; });
      if (it != rpc_spans.end() && it->first == replica) rpc_spans.erase(it);
    }
    Time wait_start = 0;      // current wait phase began here
    Time prev_reply_at = 0;   // second-to-last counted reply
    Time last_reply_at = 0;   // last counted reply
    std::uint32_t last_replica = 0;  // replica of the last counted reply
  };

  // ----------------------------------------------------------- client ops
  void handle_client_read(const sim::NodeId& from, const kv::ClientReadReq&);
  void handle_client_write(const sim::NodeId& from,
                           const kv::ClientWriteReq&);
  void start_read(kv::ObjectId oid, sim::NodeId client,
                  std::uint64_t client_req, Time start_time,
                  obs::SpanContext trace_ctx);
  void start_write(kv::ObjectId oid, kv::Version version, sim::NodeId client,
                   std::uint64_t client_req, Time start_time,
                   PendingOp::Kind kind, obs::SpanContext trace_ctx);
  void launch_op(std::uint64_t op_id);
  void contact_replicas(std::uint64_t op_id, PendingOp& op, int upto);
  void send_request(std::uint64_t op_id, PendingOp& op, std::uint32_t replica,
                    bool open_span);
  void arm_fallback(std::uint64_t op_id);
  void arm_retransmit(std::uint64_t op_id, int attempt);
  void fire_retransmit(std::uint64_t op_id, int attempt);
  void fail_op(std::uint64_t op_id);
  void finish_op(std::uint64_t op_id, PendingOp& op);
  /// Whether the replies in hand form a quorum: the full drawn set answered,
  /// or footprint-many distinct replicas did (counting intersection). On the
  /// majority path this is exactly the pre-strategy `received >= needed`.
  bool quorum_met(const PendingOp& op) const;

  // ------------------------------------------------------ storage replies
  void handle_read_reply(const sim::NodeId& from, const kv::StorageReadResp&);
  void handle_write_reply(const sim::NodeId& from,
                          const kv::StorageWriteResp&);
  void handle_nack(const kv::EpochNack&);
  void maybe_complete_read(std::uint64_t op_id);
  void retry_op(std::uint64_t op_id);

  // ----------------------------------------------------------- span layer
  /// Opens the op's trace + queue span at client arrival (zero context when
  /// the kind is unsampled). `ready` is when the proxy CPU picks the op up.
  obs::SpanContext begin_op_trace(obs::TraceKind kind, const char* name,
                                  Time arrival, Time ready);
  /// Notes a counted storage reply: closes the replica's RPC span and
  /// updates straggler bookkeeping.
  void note_reply(PendingOp& op, std::uint32_t replica);
  /// Closes the current wait span when its quorum is met, recording the
  /// quorum-wait and straggler-excess instruments (first phase only).
  void on_quorum_satisfied(PendingOp& op);
  /// Tears down the op's open spans (NACK retry / crash).
  void abort_op_spans(PendingOp& op, Time at);

  // -------------------------------------------------- reconfiguration path
  void handle_new_quorum(const sim::NodeId& from, const kv::NewQuorumMsg&);
  void handle_confirm(const sim::NodeId& from, const kv::ConfirmMsg&);
  void commit_pending_change();
  void adopt_full_config(const kv::FullConfig& config);
  void record_history(std::uint64_t cfno, int max_read_q);
  int max_read_q_since(std::uint64_t cfno) const;
  int current_max_read_q() const;
  void op_completed_for_drain();

  // ------------------------------------------------------------ monitoring
  void handle_new_round(const sim::NodeId& from, const kv::NewRoundMsg&);
  void handle_new_topk(const kv::NewTopKMsg&);
  void send_round_stats(const sim::NodeId& am, std::uint64_t round);
  void note_access(kv::ObjectId oid, bool is_write, std::uint64_t size);

  const kv::QuorumStrategy& base_strategy(kv::ObjectId oid) const;
  const kv::QuorumStrategy& pending_strategy(kv::ObjectId oid) const;

  sim::Simulator& sim_;
  Net& net_;
  sim::NodeId self_;
  const kv::Placement& placement_;
  ProxyOptions options_;
  kv::ServicePool pool_;
  bool crashed_ = false;
  /// Bumped on every crash: CPU-queue completions scheduled before the
  /// crash carry the old incarnation, so a quick restart cannot resurrect
  /// client operations the crash should have lost.
  std::uint64_t incarnation_ = 0;
  /// Proxy-local stream for retransmit jitter (deterministic per proxy
  /// index; draws never interleave with any other component's stream).
  Rng rng_;
  /// Separate stream for drawing quorums from explicit strategies. Majority
  /// strategies never touch it (their path is the pre-strategy prefix scan),
  /// and keeping it apart from rng_ means installing an explicit strategy
  /// cannot perturb the retransmit-jitter sequence of unrelated ops.
  Rng quorum_rng_;

  // Quorum state (Algorithm 3 variables).
  std::uint64_t lepno_ = 0;
  std::uint64_t lcfno_ = 0;
  kv::QuorumStrategy default_q_;
  // Ordered: reconfiguration paths iterate the override table, and the
  // iteration order feeds protocol decisions (read-quorum history).
  std::map<kv::ObjectId, kv::QuorumStrategy> overrides_;
  bool in_transition_ = false;
  kv::QuorumChange pending_change_;
  std::uint64_t pending_cfno_ = 0;
  std::map<std::uint64_t, int> read_q_history_;  // cfno -> max read quorum

  // Drain state for the NEWQ handshake.
  bool drain_waiting_ = false;
  int drain_remaining_ = 0;
  std::uint64_t drain_epno_ = 0;
  std::uint64_t drain_cfno_ = 0;
  sim::NodeId drain_reply_to_;
  obs::SpanContext drain_span_;  // child of the RM's NEWQ span

  // In-flight operations, ordered by op id: the NEWQ drain walks this table,
  // so iteration must follow issue order, not hash order.
  std::map<std::uint64_t, PendingOp> ops_;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t write_seq_ = 0;

  // Monitoring state (Section 4).
  topk::SpaceSaving summary_;
  std::unordered_set<kv::ObjectId> monitored_;
  struct ObjCounters {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double size_sum = 0;
    std::uint64_t size_count = 0;
  };
  // Ordered: per-object rows are exported verbatim into RoundStatsMsg, so
  // iteration order is part of the wire payload the AM consumes.
  std::map<kv::ObjectId, ObjCounters> monitored_stats_;
  ObjCounters tail_;
  std::uint64_t round_ops_completed_ = 0;
  double round_latency_sum_ms_ = 0;
  Time round_started_ = 0;
  std::uint64_t current_round_ = 0;

  // Heartbeat emission. The generation counter kills a stale beat loop
  // whose timer straddled a crash/restart cycle (restart starts a fresh
  // loop; without the guard both would run).
  bool heartbeats_paused_ = false;
  std::uint64_t heartbeat_seq_ = 0;
  bool hb_enabled_ = false;
  sim::NodeId hb_target_;
  Duration hb_interval_ = 0;
  std::uint64_t hb_gen_ = 0;
  void heartbeat_loop(std::uint64_t gen);

  // Observability: counters cached at construction, bumped on the hot path.
  std::unique_ptr<obs::Observability> own_obs_;  // fallback when none shared
  obs::Observability* obs_ = nullptr;
  struct Instruments {
    obs::Counter* client_reads = nullptr;
    obs::Counter* client_writes = nullptr;
    obs::Counter* not_found_reads = nullptr;
    obs::Counter* repair_reads = nullptr;
    obs::Counter* writebacks = nullptr;
    obs::Counter* nacks_received = nullptr;
    obs::Counter* op_retries = nullptr;
    obs::Counter* fallbacks = nullptr;
    obs::Counter* reconfigurations = nullptr;
    obs::Counter* retries = nullptr;            // retransmit rounds
    obs::Counter* timeouts = nullptr;           // retry budget exhausted
    obs::Counter* duplicate_replies = nullptr;  // replica-dedup drops
    obs::Counter* restarts = nullptr;
    LatencyHistogram* read_latency_ns = nullptr;
    LatencyHistogram* write_latency_ns = nullptr;
    // Span-derived latency attribution (recorded for every op, sampled or
    // not): time from fan-out to quorum, and how long the quorum-completing
    // reply trailed the previous one (the straggler tax).
    LatencyHistogram* quorum_wait_ns = nullptr;
    LatencyHistogram* straggler_excess_ns = nullptr;
  };
  Instruments ins_;
  std::string node_name_;  // cached to_string(self_) for trace events

  void trace(obs::Category category, const char* name, std::uint64_t a = 0,
             std::uint64_t b = 0);

  OpCallback on_complete_;
};

}  // namespace qopt::proxy
