#include "kv/placement.hpp"
#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/span_store.hpp"
#include "obs/trace.hpp"
#include "proxy/proxy.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "topk/space_saving.hpp"
#include "util/time.hpp"

#include <algorithm>
#include <cassert>

namespace qopt::proxy {

using kv::Message;
using kv::ObjectId;
using kv::QuorumConfig;
using kv::Version;

Proxy::Proxy(sim::Simulator& sim, Net& net, sim::NodeId self,
             const kv::Placement& placement, const ProxyOptions& options,
             obs::Observability* obs)
    : sim_(sim),
      net_(net),
      self_(self),
      placement_(placement),
      options_(options),
      pool_(options.servers),
      rng_(mix64(0x70727879ULL ^ self.index)),
      quorum_rng_(mix64(0x71756F72756DULL ^ self.index)),
      default_q_(options.initial),
      summary_(options.topk_capacity) {
  read_q_history_[0] = default_q_.read_footprint();
  if (!obs) {
    own_obs_ = std::make_unique<obs::Observability>();
    obs = own_obs_.get();
  }
  obs_ = obs;
  node_name_ = sim::to_string(self_);
  auto& reg = obs_->registry();
  const std::uint32_t i = self_.index;
  ins_.client_reads = &reg.counter(obs::instrument_name("proxy", i,
                                                        "client_reads"));
  ins_.client_writes = &reg.counter(obs::instrument_name("proxy", i,
                                                         "client_writes"));
  ins_.not_found_reads =
      &reg.counter(obs::instrument_name("proxy", i, "not_found_reads"));
  ins_.repair_reads = &reg.counter(obs::instrument_name("proxy", i,
                                                        "repair_reads"));
  ins_.writebacks = &reg.counter(obs::instrument_name("proxy", i,
                                                      "writebacks"));
  ins_.nacks_received =
      &reg.counter(obs::instrument_name("proxy", i, "nacks_received"));
  ins_.op_retries = &reg.counter(obs::instrument_name("proxy", i,
                                                      "op_retries"));
  ins_.fallbacks = &reg.counter(obs::instrument_name("proxy", i,
                                                     "fallbacks"));
  ins_.reconfigurations =
      &reg.counter(obs::instrument_name("proxy", i, "reconfigurations"));
  ins_.retries = &reg.counter(obs::instrument_name("proxy", i, "retries"));
  ins_.timeouts = &reg.counter(obs::instrument_name("proxy", i, "timeouts"));
  ins_.duplicate_replies =
      &reg.counter(obs::instrument_name("proxy", i, "duplicate_replies"));
  ins_.restarts = &reg.counter(obs::instrument_name("proxy", i, "restarts"));
  ins_.read_latency_ns =
      &reg.histogram(obs::instrument_name("proxy", i, "read_latency_ns"));
  ins_.write_latency_ns =
      &reg.histogram(obs::instrument_name("proxy", i, "write_latency_ns"));
  ins_.quorum_wait_ns =
      &reg.histogram(obs::instrument_name("proxy", i, "quorum_wait_ns"));
  ins_.straggler_excess_ns =
      &reg.histogram(obs::instrument_name("proxy", i, "straggler_excess_ns"));
}

ProxyStats Proxy::stats() const {
  ProxyStats s;
  s.client_reads = ins_.client_reads->value();
  s.client_writes = ins_.client_writes->value();
  s.not_found_reads = ins_.not_found_reads->value();
  s.repair_reads = ins_.repair_reads->value();
  s.writebacks = ins_.writebacks->value();
  s.nacks_received = ins_.nacks_received->value();
  s.op_retries = ins_.op_retries->value();
  s.fallbacks = ins_.fallbacks->value();
  s.reconfigurations = ins_.reconfigurations->value();
  s.retries = ins_.retries->value();
  s.timeouts = ins_.timeouts->value();
  s.duplicate_replies = ins_.duplicate_replies->value();
  s.restarts = ins_.restarts->value();
  return s;
}

void Proxy::trace(obs::Category category, const char* name, std::uint64_t a,
                  std::uint64_t b) {
  obs::Tracer& tracer = obs_->tracer();
  if (!tracer.enabled(category)) return;
  tracer.record(sim_.now(), category, name, node_name_, a, b);
}

void Proxy::crash() {
  crashed_ = true;
  ++incarnation_;  // invalidates already-scheduled CPU-queue completions
  net_.set_crashed(self_);
  // End in-flight traces so the span store's live set stays bounded; their
  // open spans are force-closed at the crash instant.
  for (auto& [id, op] : ops_) {
    if (op.trace_ctx.valid()) obs_->spans().end_trace(op.trace_ctx, sim_.now());
  }
  ops_.clear();
  // An unanswered NEWQ drain dies with the in-flight ops; the RM's
  // retransmitted NEWQ after restart is re-answered from scratch.
  drain_waiting_ = false;
  drain_remaining_ = 0;
  if (drain_span_.valid()) {
    obs_->spans().close_span(drain_span_, sim_.now());
    drain_span_ = obs::SpanContext{};
  }
}

void Proxy::restart() {
  if (!crashed_) return;
  crashed_ = false;
  net_.set_crashed(self_, false);
  ins_.restarts->inc();
  trace(obs::Category::kMembership, "restart");
  if (hb_enabled_) heartbeat_loop(++hb_gen_);
}

void Proxy::enable_heartbeats(sim::NodeId target, Duration interval) {
  hb_enabled_ = true;
  hb_target_ = target;
  hb_interval_ = interval;
  heartbeat_loop(++hb_gen_);
}

void Proxy::heartbeat_loop(std::uint64_t gen) {
  if (crashed_ || gen != hb_gen_) return;
  if (!heartbeats_paused_) {
    net_.send(self_, hb_target_, kv::HeartbeatMsg{++heartbeat_seq_});
  }
  sim_.after(hb_interval_, [this, gen] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kProxy);
    heartbeat_loop(gen);
  });
}

// ---------------------------------------------------------------- quorums

const kv::QuorumStrategy& Proxy::base_strategy(ObjectId oid) const {
  auto it = overrides_.find(oid);
  return it != overrides_.end() ? it->second : default_q_;
}

const kv::QuorumStrategy& Proxy::pending_strategy(ObjectId oid) const {
  // The strategy `oid` will have once the pending change commits.
  if (pending_change_.is_global) {
    auto it = overrides_.find(oid);
    return it != overrides_.end() ? it->second : pending_change_.global;
  }
  for (const auto& [changed_oid, q] : pending_change_.overrides) {
    if (changed_oid == oid) return q;
  }
  return base_strategy(oid);
}

kv::QuorumStrategy Proxy::effective_strategy(ObjectId oid) const {
  const kv::QuorumStrategy& base = base_strategy(oid);
  if (!in_transition_) return base;
  // While draining, ops run under the transition quorum: the component-wise
  // max of the old and new grid footprints, which intersects every quorum of
  // both strategies.
  return kv::transition(base, pending_strategy(oid));
}

QuorumConfig Proxy::effective_quorum(ObjectId oid) const {
  return effective_strategy(oid).footprint();
}

int Proxy::current_max_read_q() const {
  int max_r = default_q_.read_footprint();
  for (const auto& [oid, q] : overrides_) {
    max_r = std::max(max_r, q.read_footprint());
  }
  return max_r;
}

void Proxy::record_history(std::uint64_t cfno, int max_read_q) {
  auto [it, inserted] = read_q_history_.emplace(cfno, max_read_q);
  if (!inserted) it->second = std::max(it->second, max_read_q);
}

int Proxy::max_read_q_since(std::uint64_t cfno) const {
  // max over configurations in [cfno, lcfno_]; the map holds every installed
  // configuration this proxy knows about (gaps are filled by FullConfig
  // resynchronization).
  int max_r = 1;
  for (auto it = read_q_history_.lower_bound(cfno);
       it != read_q_history_.end(); ++it) {
    max_r = std::max(max_r, it->second);
  }
  return max_r;
}

// ------------------------------------------------------------- dispatcher

void Proxy::on_message(const sim::NodeId& from, const Message& msg) {
  QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kProxy);
  if (crashed_) return;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, kv::ClientReadReq>) {
          handle_client_read(from, m);
        } else if constexpr (std::is_same_v<T, kv::ClientWriteReq>) {
          handle_client_write(from, m);
        } else if constexpr (std::is_same_v<T, kv::StorageReadResp>) {
          handle_read_reply(from, m);
        } else if constexpr (std::is_same_v<T, kv::StorageWriteResp>) {
          handle_write_reply(from, m);
        } else if constexpr (std::is_same_v<T, kv::EpochNack>) {
          handle_nack(m);
        } else if constexpr (std::is_same_v<T, kv::NewQuorumMsg>) {
          handle_new_quorum(from, m);
        } else if constexpr (std::is_same_v<T, kv::ConfirmMsg>) {
          handle_confirm(from, m);
        } else if constexpr (std::is_same_v<T, kv::NewRoundMsg>) {
          handle_new_round(from, m);
        } else if constexpr (std::is_same_v<T, kv::NewTopKMsg>) {
          handle_new_topk(m);
        }
      },
      msg);
}

// --------------------------------------------------------- client entries

void Proxy::handle_client_read(const sim::NodeId& from,
                               const kv::ClientReadReq& req) {
  ins_.client_reads->inc();
  trace(obs::Category::kOp, "read_start", req.oid);
  const Time arrival = sim_.now();
  const Time ready = pool_.submit(arrival, options_.op_cost);
  const obs::SpanContext trace_ctx =
      begin_op_trace(obs::TraceKind::kRead, "read", arrival, ready);
  sim_.at(ready, [this, from, req, arrival, trace_ctx, inc = incarnation_] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kProxy);
    if (crashed_ || inc != incarnation_) {
      obs_->spans().end_trace(trace_ctx, sim_.now());
      return;
    }
    start_read(req.oid, from, req.req_id, arrival, trace_ctx);
  });
}

void Proxy::handle_client_write(const sim::NodeId& from,
                                const kv::ClientWriteReq& req) {
  ins_.client_writes->inc();
  trace(obs::Category::kOp, "write_start", req.oid);
  const Time arrival = sim_.now();
  const Time ready = pool_.submit(arrival, options_.op_cost);
  const obs::SpanContext trace_ctx =
      begin_op_trace(obs::TraceKind::kWrite, "write", arrival, ready);
  sim_.at(ready, [this, from, req, arrival, trace_ctx, inc = incarnation_] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kProxy);
    if (crashed_ || inc != incarnation_) {
      obs_->spans().end_trace(trace_ctx, sim_.now());
      return;
    }
    Version version;
    version.ts = kv::Timestamp{sim_.now(), self_.index, ++write_seq_};
    version.cfno = lcfno_;
    version.value = req.value;
    version.size_bytes = req.size_bytes;
    start_write(req.oid, version, from, req.req_id, arrival,
                PendingOp::Kind::kWrite, trace_ctx);
  });
}

void Proxy::start_read(ObjectId oid, sim::NodeId client,
                       std::uint64_t client_req, Time start_time,
                       obs::SpanContext trace_ctx) {
  const std::uint64_t op_id = next_op_id_++;
  PendingOp op;
  op.kind = PendingOp::Kind::kRead;
  op.oid = oid;
  op.client = client;
  op.client_req = client_req;
  op.start_time = start_time;
  op.trace_ctx = trace_ctx;
  ops_.emplace(op_id, std::move(op));
  launch_op(op_id);
}

void Proxy::start_write(ObjectId oid, Version version, sim::NodeId client,
                        std::uint64_t client_req, Time start_time,
                        PendingOp::Kind kind, obs::SpanContext trace_ctx) {
  const std::uint64_t op_id = next_op_id_++;
  PendingOp op;
  op.kind = kind;
  op.oid = oid;
  op.client = client;
  op.client_req = client_req;
  op.write_version = version;
  op.start_time = start_time;
  op.trace_ctx = trace_ctx;
  ops_.emplace(op_id, std::move(op));
  launch_op(op_id);
}

void Proxy::launch_op(std::uint64_t op_id) {
  PendingOp& op = ops_.at(op_id);
  op.epno_used = lepno_;
  op.cfno_used = lcfno_;
  op.received = 0;
  op.contacted = 0;
  op.replied.clear();
  op.any_found = false;
  op.repair = false;
  placement_.replicas_into(op.oid, op.replica_order);
  const std::size_t n = op.replica_order.size();
  op.replied.reserve(n);
  // Outside a transition the strategy is a stored object; bind a reference
  // instead of copying its weighted-quorum tables on every operation. The
  // transition composite only exists while a change is draining.
  kv::QuorumStrategy transitional;
  if (in_transition_) transitional = effective_strategy(op.oid);
  const kv::QuorumStrategy& strategy =
      in_transition_ ? transitional : base_strategy(op.oid);
  const bool is_read = op.kind == PendingOp::Kind::kRead;
  if (strategy.is_majority()) {
    // Load balancing: rotate the replica list by a hash of the proxy
    // identifier (Section 2.1) so different proxies spread load over
    // different quorum subsets.
    std::rotate(op.replica_order.begin(),
                op.replica_order.begin() +
                    static_cast<long>(mix64(self_.index) % n),
                op.replica_order.end());
    const QuorumConfig q = strategy.footprint();
    op.needed = is_read ? q.read_q : q.write_q;
    op.footprint_needed = op.needed;
    op.drawn.clear();
  } else {
    // Explicit strategy: draw one quorum from the selection distribution and
    // contact exactly its members first; load balancing comes from the
    // optimizer's weights, not from rotation. The non-members follow in the
    // order list so the fallback/retransmit plane can still fan out if a
    // drawn member is slow or down; quorum_met() then requires either the
    // full drawn set or footprint-many distinct replies (an arbitrary
    // |drawn|-sized reply set need not intersect every write quorum).
    const kv::WeightedQuorum& drawn = is_read
                                          ? strategy.sample_read(quorum_rng_)
                                          : strategy.sample_write(quorum_rng_);
    std::vector<std::uint32_t> order;
    order.reserve(n);
    std::vector<bool> taken(n, false);
    op.drawn.clear();
    for (std::uint32_t slot : drawn.members) {
      order.push_back(op.replica_order[slot]);
      op.drawn.push_back(op.replica_order[slot]);
      taken[slot] = true;
    }
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (!taken[slot]) order.push_back(op.replica_order[slot]);
    }
    op.replica_order = std::move(order);
    op.needed = static_cast<int>(drawn.members.size());
    op.footprint_needed = is_read ? strategy.read_footprint()
                                  : strategy.write_footprint();
  }
  op.wait_start = sim_.now();
  op.prev_reply_at = 0;
  op.last_reply_at = 0;
  op.last_replica = 0;
  op.wait_span =
      obs_->spans().open_span(op.trace_ctx, obs::Phase::kQuorumWait,
                              "quorum_wait", node_name_, sim_.now());
  contact_replicas(op_id, op, op.needed);
  arm_fallback(op_id);
  arm_retransmit(op_id, 0);
}

bool Proxy::quorum_met(const PendingOp& op) const {
  // Counting completion: footprint-many distinct replies intersect every
  // quorum of the opposite side, and — via the rmin + wmin <= n + 1
  // invariant QuorumStrategy::valid() enforces — the reply set of any other
  // counting-completed operation as well.
  if (op.received >= op.footprint_needed) return true;
  if (op.received < op.needed) return false;
  if (op.drawn.empty()) return true;  // majority path: needed IS the quorum
  for (std::uint32_t node : op.drawn) {
    if (!op.replied.contains(node)) return false;
  }
  return true;
}

void Proxy::contact_replicas(std::uint64_t op_id, PendingOp& op, int upto) {
  const int limit =
      std::min(upto, static_cast<int>(op.replica_order.size()));
  for (; op.contacted < limit; ++op.contacted) {
    send_request(op_id, op,
                 op.replica_order[static_cast<std::size_t>(op.contacted)],
                 /*open_span=*/true);
  }
}

void Proxy::send_request(std::uint64_t op_id, PendingOp& op,
                         std::uint32_t replica, bool open_span) {
  const bool is_read = op.kind == PendingOp::Kind::kRead;
  // The RPC span travels in the request so the storage node can attribute
  // its service time to this operation; replica_order holds each replica
  // once, so the rpc_spans key is unique. A retransmit (open_span false)
  // reuses the still-open span of the first send — it is the same logical
  // RPC, retried; the kRetransmit marker records the extra round.
  obs::SpanContext rpc;
  if (op.wait_span.valid()) {
    if (const obs::SpanContext* open = op.find_rpc_span(replica)) {
      rpc = *open;
    } else if (open_span) {
      rpc = obs_->spans().open_span(
          op.wait_span,
          is_read ? obs::Phase::kReplicaRead : obs::Phase::kReplicaWrite,
          is_read ? "replica_read" : "replica_write", node_name_, sim_.now());
      if (rpc.valid()) op.put_rpc_span(replica, rpc);
    }
  }
  const sim::NodeId target = sim::storage_id(replica);
  if (is_read) {
    net_.send(self_, target,
              kv::StorageReadReq{op.oid, op_id, op.epno_used, rpc});
  } else {
    net_.send(self_, target,
              kv::StorageWriteReq{op.oid, op_id, op.epno_used,
                                  op.write_version, rpc});
  }
}

void Proxy::arm_fallback(std::uint64_t op_id) {
  // "If, after a timeout period, some replies are missing, the request is
  //  sent to the remaining replicas until the desired quorum is ensured"
  // (Section 2.1). Rare path, taken mainly under storage failures.
  sim_.after(options_.fallback_timeout, [this, op_id] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kProxy);
    if (crashed_) return;
    auto it = ops_.find(op_id);
    if (it == ops_.end()) return;
    PendingOp& op = it->second;
    if (quorum_met(op)) return;
    if (op.contacted >= static_cast<int>(op.replica_order.size())) return;
    ins_.fallbacks->inc();
    trace(obs::Category::kQuorum, "fallback", op.oid);
    contact_replicas(op_id, op, static_cast<int>(op.replica_order.size()));
  });
}

void Proxy::arm_retransmit(std::uint64_t op_id, int attempt) {
  // At-least-once RPC plane: after an exponentially backed-off, jittered
  // timeout the op re-sends to contacted-but-silent replicas (same op id;
  // storage dedups applied writes). Disabled by retry_budget = 0.
  if (options_.retry_budget <= 0) return;
  double delay = static_cast<double>(options_.retry_base);
  for (int k = 0; k < attempt; ++k) delay *= options_.retry_multiplier;
  delay *= 1.0 + options_.retry_jitter * (2.0 * rng_.next_double() - 1.0);
  sim_.after(static_cast<Duration>(delay),
             [this, op_id, attempt, inc = incarnation_] {
               QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kProxy);
               if (crashed_ || inc != incarnation_) return;
               fire_retransmit(op_id, attempt);
             });
}

void Proxy::fire_retransmit(std::uint64_t op_id, int attempt) {
  auto it = ops_.find(op_id);
  if (it == ops_.end()) return;  // completed, failed, or NACK-retried
  PendingOp& op = it->second;
  if (quorum_met(op)) return;
  if (attempt >= options_.retry_budget) {
    fail_op(op_id);
    return;
  }
  ins_.retries->inc();
  trace(obs::Category::kQuorum, "retransmit", op.oid,
        static_cast<std::uint64_t>(attempt));
  if (op.trace_ctx.valid()) {
    // Zero-duration marker: retransmit rounds show up on the op's trace.
    obs::SpanStore& spans = obs_->spans();
    const obs::SpanContext marker =
        spans.open_span(op.trace_ctx, obs::Phase::kRetransmit, "retransmit",
                        node_name_, sim_.now());
    spans.close_span(marker, sim_.now(), op.oid,
                     static_cast<std::uint64_t>(attempt));
  }
  for (int i = 0; i < op.contacted; ++i) {
    const std::uint32_t replica =
        op.replica_order[static_cast<std::size_t>(i)];
    if (op.replied.contains(replica)) continue;
    send_request(op_id, op, replica, /*open_span=*/false);
  }
  arm_retransmit(op_id, attempt + 1);
}

void Proxy::fail_op(std::uint64_t op_id) {
  auto node = ops_.extract(op_id);
  PendingOp op = std::move(node.mapped());
  ins_.timeouts->inc();
  trace(obs::Category::kOp, "op_failed", op.oid);
  abort_op_spans(op, sim_.now());
  if (op.trace_ctx.valid()) {
    obs::SpanStore& spans = obs_->spans();
    const obs::SpanContext marker =
        spans.open_span(op.trace_ctx, obs::Phase::kOpFailed, "op_failed",
                        node_name_, sim_.now());
    spans.close_span(marker, sim_.now(), op.oid);
  }
  if (op.kind == PendingOp::Kind::kRead) {
    kv::ClientReadResp resp;
    resp.req_id = op.client_req;
    resp.failed = true;
    net_.send(self_, op.client, resp);
  } else if (op.kind == PendingOp::Kind::kWrite) {
    kv::ClientWriteResp resp;
    resp.req_id = op.client_req;
    resp.failed = true;
    net_.send(self_, op.client, resp);
  }
  // A failed write-back vanishes silently: the repaired value stays
  // readable through the historical-quorum path, so nothing is lost.
  if (op.trace_ctx.valid()) obs_->spans().end_trace(op.trace_ctx, sim_.now());
  // A draining op that times out still drains — otherwise a single lost
  // replica would wedge the NEWQ handshake forever.
  if (op.drains) op_completed_for_drain();
}

// ------------------------------------------------------------- span layer

obs::SpanContext Proxy::begin_op_trace(obs::TraceKind kind, const char* name,
                                       Time arrival, Time ready) {
  obs::SpanStore& spans = obs_->spans();
  const obs::SpanContext trace_ctx =
      spans.start_trace(kind, name, node_name_, arrival);
  if (trace_ctx.valid()) {
    const obs::SpanContext queue = spans.open_span(
        trace_ctx, obs::Phase::kProxyQueue, "proxy_queue", node_name_,
        arrival);
    spans.close_span(queue, ready);
  }
  return trace_ctx;
}

void Proxy::note_reply(PendingOp& op, std::uint32_t replica) {
  op.prev_reply_at = op.last_reply_at;
  op.last_reply_at = sim_.now();
  op.last_replica = replica;
  if (const obs::SpanContext* rpc = op.find_rpc_span(replica)) {
    obs_->spans().close_span(*rpc, sim_.now(), op.oid, replica);
    op.drop_rpc_span(replica);
  }
}

void Proxy::on_quorum_satisfied(PendingOp& op) {
  const Time now = sim_.now();
  // Straggler tax: how long the quorum-completing reply trailed the
  // previous one. Zero when a single reply sufficed.
  const Duration excess = (op.received >= 2 && op.prev_reply_at > 0)
                              ? op.last_reply_at - op.prev_reply_at
                              : 0;
  if (!op.repair) {
    ins_.quorum_wait_ns->record(static_cast<double>(now - op.wait_start));
    ins_.straggler_excess_ns->record(static_cast<double>(excess));
  }
  if (op.wait_span.valid()) {
    obs_->spans().close_span(op.wait_span, now, op.last_replica,
                             static_cast<std::uint64_t>(excess));
    op.wait_span = obs::SpanContext{};
  }
}

void Proxy::abort_op_spans(PendingOp& op, Time at) {
  obs::SpanStore& spans = obs_->spans();
  for (const auto& [replica, ctx] : op.rpc_spans) {
    spans.close_span(ctx, at, op.oid, replica);
  }
  op.rpc_spans.clear();
  if (op.wait_span.valid()) {
    spans.close_span(op.wait_span, at);
    op.wait_span = obs::SpanContext{};
  }
}

// --------------------------------------------------------- storage replies

void Proxy::handle_read_reply(const sim::NodeId& from,
                              const kv::StorageReadResp& resp) {
  auto it = ops_.find(resp.op_id);
  if (it == ops_.end()) return;  // stale attempt or already completed
  PendingOp& op = it->second;
  if (!op.replied.insert(from.index)) {
    // Network duplicate or retransmit answer from an already-counted
    // replica: a quorum must be `needed` *distinct* replicas.
    ins_.duplicate_replies->inc();
    return;
  }
  ++op.received;
  note_reply(op, from.index);
  if (resp.found &&
      (!op.any_found || resp.version.ts > op.best.ts ||
       (resp.version.ts == op.best.ts && resp.version.cfno > op.best.cfno))) {
    op.best = resp.version;
    op.any_found = true;
  }
  maybe_complete_read(resp.op_id);
}

void Proxy::maybe_complete_read(std::uint64_t op_id) {
  PendingOp& op = ops_.at(op_id);
  if (!quorum_met(op)) return;

  if (!op.repair && op.any_found && op.best.cfno < lcfno_) {
    // Algorithm 4 lines 10-17: the freshest version was created under an
    // older configuration; if the replies in hand are fewer than the largest
    // read-quorum footprint installed since, re-read with that quorum to
    // guarantee intersection with the writing quorum. The guarantee actually
    // in hand is op.received distinct replies — on the explicit path
    // quorum_met() can fire with only footprint_needed <= needed of them —
    // so the skip condition counts replies, not the drawn-quorum size:
    // received >= old_r replies intersect every write quorum of the writing
    // configuration by counting.
    const int old_r = max_read_q_since(op.best.cfno);
    if (old_r > op.received) {
      on_quorum_satisfied(op);  // the first-phase quorum is in hand
      op.repair = true;
      op.needed = old_r;
      // The repair phase is a pure counting read: ANY old_r distinct
      // replicas intersect the writing configuration's write quorums.
      op.footprint_needed = old_r;
      op.drawn.clear();
      ins_.repair_reads->inc();
      trace(obs::Category::kQuorum, "read_repair", op.oid,
            static_cast<std::uint64_t>(old_r));
      // Second wait phase: the historical-quorum re-read (Algorithm 4).
      op.wait_start = sim_.now();
      op.prev_reply_at = 0;
      op.last_reply_at = 0;
      op.wait_span =
          obs_->spans().open_span(op.trace_ctx, obs::Phase::kReadRepair,
                                  "read_repair", node_name_, sim_.now());
      if (op.received < op.needed) {
        contact_replicas(op_id, op, op.needed);
        arm_fallback(op_id);
        return;
      }
      // Fallback already contacted enough replicas; complete below.
    }
  }
  on_quorum_satisfied(op);
  finish_op(op_id, op);
}

void Proxy::handle_write_reply(const sim::NodeId& from,
                               const kv::StorageWriteResp& resp) {
  auto it = ops_.find(resp.op_id);
  if (it == ops_.end()) return;
  PendingOp& op = it->second;
  if (!op.replied.insert(from.index)) {
    ins_.duplicate_replies->inc();
    return;
  }
  ++op.received;
  note_reply(op, from.index);
  if (quorum_met(op)) {
    on_quorum_satisfied(op);
    finish_op(resp.op_id, op);
  }
}

void Proxy::handle_nack(const kv::EpochNack& nack) {
  ins_.nacks_received->inc();
  trace(obs::Category::kQuorum, "nack", nack.op_id, nack.config.epno);
  if (nack.config.epno > lepno_) adopt_full_config(nack.config);
  auto it = ops_.find(nack.op_id);
  if (it == ops_.end()) return;
  retry_op(nack.op_id);
}

void Proxy::retry_op(std::uint64_t op_id) {
  // Re-execute the operation in the (newly learned) epoch. A fresh op-id
  // fences replies belonging to the aborted attempt.
  ins_.op_retries->inc();
  auto node = ops_.extract(op_id);
  PendingOp op = std::move(node.mapped());
  abort_op_spans(op, sim_.now());
  if (op.trace_ctx.valid()) {
    // Zero-duration marker: the NACK aborted the attempt here; launch_op
    // opens a fresh wait span for the re-execution.
    obs::SpanStore& spans = obs_->spans();
    const obs::SpanContext marker =
        spans.open_span(op.trace_ctx, obs::Phase::kNackRetry, "nack_retry",
                        node_name_, sim_.now());
    spans.close_span(marker, sim_.now(), op.oid);
  }
  if (op.kind != PendingOp::Kind::kRead) {
    // Re-tag the version with the configuration it is (re)written under.
    op.write_version.cfno = lcfno_;
  }
  const std::uint64_t new_id = next_op_id_++;
  ops_.emplace(new_id, std::move(op));
  launch_op(new_id);
}

void Proxy::finish_op(std::uint64_t op_id, PendingOp& op_ref) {
  PendingOp op = std::move(op_ref);
  ops_.erase(op_id);

  const bool is_read = op.kind == PendingOp::Kind::kRead;
  if (is_read) {
    kv::ClientReadResp resp;
    resp.req_id = op.client_req;
    resp.found = op.any_found;
    if (op.any_found) resp.version = op.best;
    if (!op.any_found) ins_.not_found_reads->inc();
    net_.send(self_, op.client, resp);
  } else if (op.kind == PendingOp::Kind::kWrite) {
    net_.send(self_, op.client,
              kv::ClientWriteResp{op.client_req, op.write_version.ts});
  } else {
    ins_.writebacks->inc();
    // A write-back is a completed write: surface its quorum so the
    // consistency checker's intersection audit knows which replicas now
    // hold the repaired version.
    if (on_complete_) {
      on_complete_(OpRecord{op.oid, true, op.start_time, sim_.now(),
                            self_.index, op.cfno_used,
                            {op.replied.begin(), op.replied.end()}});
    }
  }

  if (op.kind != PendingOp::Kind::kWriteBack) {
    const std::uint64_t size =
        is_read ? (op.any_found ? op.best.size_bytes : 0)
                : op.write_version.size_bytes;
    note_access(op.oid, !is_read, size);
    const Duration latency = sim_.now() - op.start_time;
    auto* hist = is_read ? ins_.read_latency_ns : ins_.write_latency_ns;
    hist->record(static_cast<double>(latency));
    trace(obs::Category::kOp, is_read ? "read_finish" : "write_finish",
          op.oid, static_cast<std::uint64_t>(latency));
    round_latency_sum_ms_ += to_millis(latency);
    if (on_complete_) {
      on_complete_(OpRecord{op.oid, !is_read, op.start_time, sim_.now(),
                            self_.index, op.cfno_used,
                            {op.replied.begin(), op.replied.end()}});
    }
  }

  // Repaired reads are written back under the current quorum so future
  // reads need not repeat the historical-quorum read (Algorithm 4 line 27;
  // the write-back is asynchronous w.r.t. the client reply).
  if (is_read && op.repair && op.any_found) {
    Version wb = op.best;
    wb.cfno = lcfno_;
    // The write-back is its own trace: it outlives the client op and has no
    // queueing phase.
    const obs::SpanContext wb_trace = obs_->spans().start_trace(
        obs::TraceKind::kWriteback, "writeback", node_name_, sim_.now());
    start_write(op.oid, wb, sim::NodeId{}, 0, sim_.now(),
                PendingOp::Kind::kWriteBack, wb_trace);
  }

  if (op.trace_ctx.valid()) obs_->spans().end_trace(op.trace_ctx, sim_.now());
  // Only ops issued before the NEWQ count toward its drain; ops launched
  // under the transition quorum must not release the ACKNEWQ early.
  if (op.drains) op_completed_for_drain();
}

// ----------------------------------------------------- reconfiguration path

void Proxy::handle_new_quorum(const sim::NodeId& from,
                              const kv::NewQuorumMsg& msg) {
  if (msg.strategy_version > kv::QuorumStrategy::kWireVersion) {
    // Future strategy encoding this proxy cannot decode: stay silent (no
    // ack) so the install cannot take effect with a half-understood payload;
    // the RM keeps retransmitting and operators see the stalled handshake.
    trace(obs::Category::kReconfig, "proxy_newq_version_skew", msg.epno,
          msg.strategy_version);
    return;
  }
  if (msg.cfno <= lcfno_) {
    if (drain_waiting_ && msg.cfno == drain_cfno_) {
      // RM retransmission of the NEWQ whose drain is still in progress:
      // acking now would defeat the drain, so stay silent — the pending
      // drain acknowledges when it completes.
      return;
    }
    // Already known (learned via a NACK resync or a retransmission); the
    // acknowledgement is still required so the RM can make progress.
    net_.send(self_, from, kv::AckNewQuorumMsg{msg.epno, msg.cfno});
    return;
  }
  if (in_transition_) {
    // The previous reconfiguration was finalized via an epoch change we did
    // not observe directly; its transition quorum dominated both old and new
    // quorums, so committing it before adopting the next change is safe.
    commit_pending_change();
  }
  ins_.reconfigurations->inc();
  trace(obs::Category::kReconfig, "proxy_newq", msg.epno, msg.cfno);
  // Drain span, parented under the RM's NEWQ phase span; a stale one (the
  // previous drain was superseded before its ops completed) is closed here.
  if (drain_span_.valid()) obs_->spans().close_span(drain_span_, sim_.now());
  drain_span_ = obs_->spans().open_span(msg.span, obs::Phase::kProxyDrain,
                                        "proxy_drain", node_name_, sim_.now());
  pending_change_ = msg.change;
  pending_cfno_ = msg.cfno;
  in_transition_ = true;
  lcfno_ = msg.cfno;
  lepno_ = std::max(lepno_, msg.epno);

  // Record the read-quorum footprint of the configuration being installed
  // (set Q of Algorithm 3/4). For per-object changes we conservatively
  // record the max read footprint across the post-change state.
  int new_max_r;
  if (pending_change_.is_global) {
    new_max_r = pending_change_.global.read_footprint();
    for (const auto& [oid, q] : overrides_) {
      new_max_r = std::max(new_max_r, q.read_footprint());
    }
  } else {
    new_max_r = default_q_.read_footprint();
    for (const auto& [oid, q] : overrides_) {
      new_max_r = std::max(new_max_r, q.read_footprint());
    }
    for (const auto& [oid, q] : pending_change_.overrides) {
      new_max_r = std::max(new_max_r, q.read_footprint());
    }
  }
  record_history(msg.cfno, new_max_r);

  // Drain: acknowledge only when every operation issued under the old
  // quorum has completed (Algorithm 3 line 14). New operations proceed
  // immediately using the transition quorum — the protocol is non-blocking.
  drain_waiting_ = true;
  drain_epno_ = msg.epno;
  drain_cfno_ = msg.cfno;
  drain_reply_to_ = from;
  drain_remaining_ = 0;
  for (auto& [id, op] : ops_) {
    op.drains = true;
    ++drain_remaining_;
  }
  if (drain_remaining_ == 0) {
    drain_waiting_ = false;
    if (drain_span_.valid()) {
      obs_->spans().close_span(drain_span_, sim_.now(), drain_cfno_);
      drain_span_ = obs::SpanContext{};
    }
    net_.send(self_, from, kv::AckNewQuorumMsg{msg.epno, msg.cfno});
  }
}

void Proxy::op_completed_for_drain() {
  if (!drain_waiting_) return;
  // finish_op only calls us once per op; ops launched after NEWQ have
  // drains=false and were not counted.
  if (--drain_remaining_ <= 0) {
    drain_waiting_ = false;
    if (drain_span_.valid()) {
      obs_->spans().close_span(drain_span_, sim_.now(), drain_cfno_);
      drain_span_ = obs::SpanContext{};
    }
    net_.send(self_, drain_reply_to_,
              kv::AckNewQuorumMsg{drain_epno_, drain_cfno_});
  }
}

void Proxy::handle_confirm(const sim::NodeId& from, const kv::ConfirmMsg& msg) {
  trace(obs::Category::kReconfig, "proxy_confirm", msg.epno, msg.cfno);
  if (msg.span.valid()) {
    // Zero-duration adoption marker under the RM's CONFIRM phase span.
    obs::SpanStore& spans = obs_->spans();
    const obs::SpanContext marker =
        spans.open_span(msg.span, obs::Phase::kProxyConfirm, "proxy_confirm",
                        node_name_, sim_.now());
    spans.close_span(marker, sim_.now(), msg.epno, msg.cfno);
  }
  if (in_transition_ && msg.cfno == pending_cfno_) {
    commit_pending_change();
    lepno_ = std::max(lepno_, msg.epno);
  }
  net_.send(self_, from, kv::AckConfirmMsg{msg.epno, msg.cfno});
}

void Proxy::commit_pending_change() {
  if (pending_change_.is_global) {
    default_q_ = pending_change_.global;
  } else {
    for (const auto& [oid, q] : pending_change_.overrides) {
      overrides_[oid] = q;
    }
  }
  in_transition_ = false;
}

void Proxy::adopt_full_config(const kv::FullConfig& config) {
  trace(obs::Category::kReconfig, "proxy_resync", config.epno, config.cfno);
  lepno_ = config.epno;
  if (config.cfno >= lcfno_) {
    lcfno_ = config.cfno;
    default_q_ = config.default_q;
    overrides_.clear();
    for (const auto& [oid, q] : config.overrides) overrides_.emplace(oid, q);
    if (config.transitional) {
      // Phase-1 epoch-change payload: we now run with the transition
      // quorums; commit the pending change when the CONFIRM arrives (or
      // when a later NEWQ supersedes it).
      in_transition_ = true;
      pending_change_ = config.pending;
      pending_cfno_ = config.cfno;
    } else {
      in_transition_ = false;
    }
  }
  for (const auto& [cfno, max_r] : config.read_q_history) {
    record_history(cfno, max_r);
  }
}

// ------------------------------------------------------------- monitoring

void Proxy::note_access(ObjectId oid, bool is_write, std::uint64_t size) {
  ++round_ops_completed_;
  summary_.add(oid);
  auto update = [&](ObjCounters& counters) {
    if (is_write) {
      ++counters.writes;
    } else {
      ++counters.reads;
    }
    if (size > 0) {
      counters.size_sum += static_cast<double>(size);
      ++counters.size_count;
    }
  };
  // monitored_stats_ holds exactly the monitored_ keys (handle_new_topk
  // pre-populates them), so a single find() replaces contains + operator[]
  // and never allocates on this per-operation path.
  if (auto it = monitored_stats_.find(oid); it != monitored_stats_.end()) {
    update(it->second);
  }
  if (!overrides_.contains(oid)) update(tail_);
}

void Proxy::handle_new_round(const sim::NodeId& from,
                             const kv::NewRoundMsg& msg) {
  current_round_ = msg.round;
  round_started_ = sim_.now();
  round_ops_completed_ = 0;
  round_latency_sum_ms_ = 0;
  summary_.clear();
  tail_ = ObjCounters{};
  for (auto& [oid, counters] : monitored_stats_) counters = ObjCounters{};
  const std::uint64_t round = msg.round;
  sim_.after(msg.window, [this, from, round] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kProxy);
    if (crashed_ || current_round_ != round) return;
    send_round_stats(from, round);
  });
}

void Proxy::send_round_stats(const sim::NodeId& am, std::uint64_t round) {
  kv::RoundStatsMsg msg;
  msg.round = round;
  // Candidate hotspots: heaviest keys that are not already individually
  // optimized or under monitoring (they go to the AM for the *next* round).
  for (const topk::TopKEntry& entry : summary_.top(summary_.capacity())) {
    if (overrides_.contains(entry.key) || monitored_.contains(entry.key)) {
      continue;
    }
    msg.topk.push_back(kv::TopKReport{entry.key, entry.count, entry.error});
  }
  for (const auto& [oid, counters] : monitored_stats_) {
    kv::ObjectStats object_stats;
    object_stats.oid = oid;
    object_stats.reads = counters.reads;
    object_stats.writes = counters.writes;
    object_stats.avg_size_bytes =
        counters.size_count
            ? counters.size_sum / static_cast<double>(counters.size_count)
            : 0.0;
    msg.stats_topk.push_back(object_stats);
  }
  msg.stats_tail.reads = tail_.reads;
  msg.stats_tail.writes = tail_.writes;
  msg.stats_tail.avg_size_bytes =
      tail_.size_count
          ? tail_.size_sum / static_cast<double>(tail_.size_count)
          : 0.0;
  const double window_s = to_seconds(sim_.now() - round_started_);
  msg.throughput_ops =
      window_s > 0 ? static_cast<double>(round_ops_completed_) / window_s
                   : 0.0;
  msg.avg_latency_ms =
      round_ops_completed_
          ? round_latency_sum_ms_ / static_cast<double>(round_ops_completed_)
          : 0.0;
  net_.send(self_, am, msg);
}

void Proxy::handle_new_topk(const kv::NewTopKMsg& msg) {
  monitored_.clear();
  monitored_stats_.clear();
  for (ObjectId oid : msg.monitored) {
    monitored_.insert(oid);
    monitored_stats_.emplace(oid, ObjCounters{});
  }
}

}  // namespace qopt::proxy
