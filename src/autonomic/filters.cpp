#include "autonomic/filters.hpp"

#include <algorithm>
#include <cmath>

namespace qopt::autonomic {

// ----------------------------------------------------------- OutlierFilter

OutlierFilter::OutlierFilter(std::size_t window, double threshold)
    : window_(window < 3 ? 3 : window), threshold_(threshold) {}

double OutlierFilter::rolling_median() const {
  std::vector<double> sorted(samples_.begin(), samples_.end());
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  return sorted[sorted.size() / 2];
}

double OutlierFilter::rolling_mad(double median) const {
  std::vector<double> deviations;
  deviations.reserve(samples_.size());
  for (double s : samples_) deviations.push_back(std::abs(s - median));
  std::nth_element(deviations.begin(),
                   deviations.begin() + deviations.size() / 2,
                   deviations.end());
  // 1.4826 scales MAD to the stddev of a normal distribution.
  return 1.4826 * deviations[deviations.size() / 2];
}

double OutlierFilter::filter(double sample) {
  last_was_outlier_ = false;
  // Rejection requires a full window: small warm-up windows have unstable
  // MADs and would reject legitimate samples.
  if (samples_.size() >= window_ && consecutive_rejects_ < window_) {
    const double median = rolling_median();
    const double mad = rolling_mad(median);
    // Guard against a degenerate zero-MAD window (constant history): treat
    // any deviation beyond a small relative epsilon as an outlier there.
    const double scale =
        mad > 0 ? mad : std::max(1e-9, std::abs(median) * 1e-3);
    if (std::abs(sample - median) > threshold_ * scale) {
      last_was_outlier_ = true;
      ++rejected_;
      ++consecutive_rejects_;
      // The outlier is excluded from the window so a burst of spikes cannot
      // drag the median toward itself. The consecutive-rejection cap above
      // is the safety valve: a window-long run of "outliers" is a genuine
      // regime change and must pass through.
      return median;
    }
  }
  consecutive_rejects_ = 0;
  samples_.push_back(sample);
  if (samples_.size() > window_) samples_.pop_front();
  return sample;
}

void OutlierFilter::reset() {
  samples_.clear();
  last_was_outlier_ = false;
  rejected_ = 0;
  consecutive_rejects_ = 0;
}

// ----------------------------------------------------------- ShiftDetector

ShiftDetector::ShiftDetector(double delta, double lambda)
    : delta_(delta), lambda_(lambda) {}

bool ShiftDetector::update(double sample) {
  ++count_;
  mean_ += (sample - mean_) / static_cast<double>(count_);
  const double scale = std::abs(mean_) > 1e-12 ? std::abs(mean_) : 1.0;
  const double normalized = (sample - mean_) / scale;

  // Two-sided Page-Hinkley statistics.
  cum_up_ += normalized - delta_;
  min_up_ = std::min(min_up_, cum_up_);
  cum_down_ += normalized + delta_;
  max_down_ = std::max(max_down_, cum_down_);

  const bool up = cum_up_ - min_up_ > lambda_;
  const bool down = max_down_ - cum_down_ > lambda_;
  if (up || down) {
    ++shifts_;
    // Restart the statistics around the new regime.
    mean_ = sample;
    count_ = 1;
    cum_up_ = cum_down_ = min_up_ = max_down_ = 0;
    return true;
  }
  return false;
}

void ShiftDetector::reset() {
  mean_ = 0;
  count_ = 0;
  cum_up_ = cum_down_ = min_up_ = max_down_ = 0;
}

// ---------------------------------------------------------- TrendPredictor

TrendPredictor::TrendPredictor(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {}

void TrendPredictor::update(double sample) {
  ++count_;
  if (count_ == 1) {
    level_ = sample;
    trend_ = 0;
    return;
  }
  const double prev_level = level_;
  level_ = alpha_ * sample + (1 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1 - beta_) * trend_;
}

double TrendPredictor::forecast(std::size_t steps) const {
  return level_ + static_cast<double>(steps) * trend_;
}

void TrendPredictor::reset() {
  level_ = trend_ = 0;
  count_ = 0;
}

}  // namespace qopt::autonomic
