// Autonomic Manager (AM) — Algorithm 1 of the paper.
//
// Orchestrates the self-tuning loop:
//   1. each round, broadcast NEWROUND to the proxies and gather ROUNDSTATS
//      (per-proxy top-k candidates, profiles of the currently monitored
//      hotspots, the aggregate tail profile, and the achieved KPI);
//   2. merge the statistics, feed the monitored objects' profiles to the
//      Oracle, and ask the Reconfiguration Manager to install any quorum
//      changes the Oracle recommends (fine-grain, per-object);
//   3. broadcast the next top-k set to monitor (NEWTOPK);
//   4. stop fine-grain optimization when the average KPI improvement over
//      the last γ rounds falls below θ, then perform the coarse tail
//      optimization: one quorum for all non-optimized objects, predicted
//      from their aggregate profile.
//
// Beyond the paper's pseudo-code, the manager keeps running in a steady
// monitoring mode after convergence (the paper's prototype reacts to
// workload changes with a 30 s moving average and a post-reconfiguration
// quarantine period): it re-checks optimized objects and the tail for
// drift, and restarts fine-grain optimization when the KPI degrades
// markedly relative to the converged baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "autonomic/filters.hpp"
#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "oracle/oracle.hpp"
#include "reconfig/reconfig_manager.hpp"
#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace qopt::oracle {
class StrategyOptimizer;  // optional richer backend, detected at runtime
}

namespace qopt::autonomic {

enum class Kpi { kThroughput, kLatency };

struct AutonomicOptions {
  Duration round_window = seconds(10);   // per-round monitoring window
  std::size_t topk_per_round = 8;        // objects optimized per round (k)
  double improvement_threshold = 0.02;   // θ
  std::size_t improvement_window = 2;    // γ
  Duration quarantine = seconds(5);      // settle time after a reconfig
  std::uint64_t min_samples_per_object = 10;
  oracle::QuorumConstraints constraints;
  bool tail_optimization = true;
  bool steady_monitoring = true;
  double restart_drop_fraction = 0.25;   // KPI drop that restarts tuning
  Kpi kpi = Kpi::kThroughput;
  // Robustness add-ons (Section 4's suggested techniques):
  bool filter_kpi_outliers = true;   // Hampel filter on per-round KPI
  bool detect_workload_shift = true;  // Page-Hinkley on tail write ratio
  bool drift_hysteresis = true;  // two-round agreement before steady drift
};

/// Legacy aggregate view; the authoritative instruments live in the shared
/// `obs::MetricRegistry` under `am.*`.
struct AutonomicStats {
  std::uint64_t rounds = 0;
  std::uint64_t fine_grain_reconfigs = 0;  // per-object batches applied
  std::uint64_t objects_tuned = 0;
  std::uint64_t tail_reconfigs = 0;
  std::uint64_t steady_reconfigs = 0;
  std::uint64_t restarts = 0;
};

class AutonomicManager {
 public:
  using Net = sim::Network<kv::Message>;
  /// Observer for adaptation traces: (virtual time, description).
  using EventCallback = std::function<void(Time, const std::string&)>;

  /// `obs` is the cluster-wide observability bundle; when null the AM
  /// allocates a private one (stand-alone component tests).
  AutonomicManager(sim::Simulator& sim, Net& net, sim::NodeId self,
                   sim::FailureDetector& fd,
                   reconfig::ReconfigManager& rm, oracle::Oracle& oracle,
                   std::vector<sim::NodeId> proxies, int replication,
                   const AutonomicOptions& options,
                   obs::Observability* obs = nullptr);

  /// Starts the optimization loop (round 1 begins immediately).
  void start();
  void stop();
  bool running() const noexcept { return running_; }

  void on_message(const sim::NodeId& from, const kv::Message& msg);
  void set_event_callback(EventCallback cb) { on_event_ = std::move(cb); }

  /// Observability bundle in use (the shared one, or the private fallback).
  obs::Observability& observability() noexcept { return *obs_; }
  const obs::Observability& observability() const noexcept { return *obs_; }
  [[deprecated("query the metric registry (am.*) instead")]]
  AutonomicStats stats() const;
  bool converged() const noexcept { return mode_ == Mode::kSteady; }
  std::uint64_t round() const noexcept { return round_; }
  double last_kpi() const noexcept { return last_kpi_; }
  /// Holt forecast of the KPI (observability / what-if tooling).
  const TrendPredictor& kpi_trend() const noexcept { return kpi_trend_; }
  const OutlierFilter& kpi_filter() const noexcept { return kpi_filter_; }
  const ShiftDetector& workload_shift() const noexcept {
    return workload_shift_;
  }

 private:
  enum class Mode { kFineGrain, kSteady };

  void begin_round();
  void handle_round_stats(const sim::NodeId& from,
                          const kv::RoundStatsMsg& stats);
  void maybe_process_round();
  void process_round();
  void process_fine_grain(const std::vector<kv::ObjectStats>& merged_topk,
                          const kv::TailStats& tail,
                          std::vector<kv::TopKReport> merged_candidates);
  void process_steady(const std::vector<kv::ObjectStats>& merged_topk,
                      const kv::TailStats& tail);
  void finish_fine_grain(const kv::TailStats& tail);
  void schedule_next_round(bool reconfigured);
  void broadcast_new_topk(std::vector<kv::ObjectId> monitored);
  void emit(const std::string& what);

  /// Oracle prediction for a profile; returns 0 when there is not enough
  /// data to act.
  int predict(std::uint64_t reads, std::uint64_t writes, double avg_size,
              double window_s) const;
  /// Workload characterization for the Oracle; nullopt below the sample
  /// floor.
  std::optional<oracle::WorkloadFeatures> features_for(
      std::uint64_t reads, std::uint64_t writes, double avg_size,
      double window_s) const;
  /// Tail (store-wide default) target: a full optimized strategy when the
  /// oracle is a StrategyOptimizer, otherwise the majority grid derived
  /// from the predicted write-quorum size. Nullopt when there is not
  /// enough data.
  std::optional<kv::QuorumStrategy> predict_tail_strategy(
      const kv::TailStats& tail, double window_s) const;

  sim::Simulator& sim_;
  Net& net_;
  sim::NodeId self_;
  sim::FailureDetector& fd_;
  reconfig::ReconfigManager& rm_;
  oracle::Oracle& oracle_;
  /// Non-null when `oracle_` is a StrategyOptimizer: the tail optimization
  /// then installs full optimized strategies instead of majority grids.
  oracle::StrategyOptimizer* strategy_opt_ = nullptr;
  std::vector<sim::NodeId> proxies_;
  int replication_;
  AutonomicOptions options_;

  bool running_ = false;
  Mode mode_ = Mode::kFineGrain;
  std::uint64_t round_ = 0;
  std::uint64_t generation_ = 0;  // invalidates stale timers across stop()

  // Round gathering, ordered by proxy index: report merging accumulates
  // floating-point sums, so the merge order is part of the result.
  std::map<std::uint32_t, kv::RoundStatsMsg> reports_;
  bool gathering_ = false;

  // Monitored hotspot set (sent in the last NEWTOPK).
  std::vector<kv::ObjectId> monitored_;

  // KPI tracking.
  double last_kpi_ = 0.0;
  bool have_kpi_ = false;
  std::deque<double> improvements_;
  MovingAverage steady_baseline_;
  std::size_t steady_rotation_ = 0;
  // Steady-mode hysteresis; empty when the previous round made no
  // prediction.
  std::optional<kv::QuorumStrategy> last_tail_prediction_;
  std::unordered_map<kv::ObjectId, kv::QuorumConfig> last_object_prediction_;

  // Robust signal processing over the autonomic loop's inputs.
  OutlierFilter kpi_filter_;
  ShiftDetector workload_shift_;   // watches the tail write ratio
  TrendPredictor kpi_trend_;

  // Observability: counters cached at construction, bumped on the hot path.
  std::unique_ptr<obs::Observability> own_obs_;  // fallback when none shared
  obs::Observability* obs_ = nullptr;
  struct Instruments {
    obs::Counter* rounds = nullptr;
    obs::Counter* fine_grain_reconfigs = nullptr;
    obs::Counter* objects_tuned = nullptr;
    obs::Counter* tail_reconfigs = nullptr;
    obs::Counter* steady_reconfigs = nullptr;
    obs::Counter* restarts = nullptr;
    obs::Gauge* round = nullptr;
    obs::Gauge* last_kpi = nullptr;
  };
  Instruments ins_;

  EventCallback on_event_;
};

}  // namespace qopt::autonomic
