#include "autonomic/autonomic_manager.hpp"
#include "kv/quorum.hpp"
#include "kv/types.hpp"
#include "kv/wire.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "oracle/oracle.hpp"
#include "oracle/strategy_optimizer.hpp"
#include "reconfig/reconfig_manager.hpp"
#include "sim/failure_detector.hpp"
#include "sim/ids.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

namespace qopt::autonomic {

using kv::Message;
using kv::ObjectId;
using kv::ObjectStats;
using kv::QuorumChange;
using kv::QuorumConfig;
using kv::RoundStatsMsg;
using kv::TailStats;
using kv::TopKReport;

AutonomicManager::AutonomicManager(sim::Simulator& sim, Net& net,
                                   sim::NodeId self, sim::FailureDetector& fd,
                                   reconfig::ReconfigManager& rm,
                                   oracle::Oracle& oracle,
                                   std::vector<sim::NodeId> proxies,
                                   int replication,
                                   const AutonomicOptions& options,
                                   obs::Observability* obs)
    : sim_(sim),
      net_(net),
      self_(self),
      fd_(fd),
      rm_(rm),
      oracle_(oracle),
      proxies_(std::move(proxies)),
      replication_(replication),
      options_(options),
      steady_baseline_(4) {
  strategy_opt_ = dynamic_cast<oracle::StrategyOptimizer*>(&oracle_);
  fd_.subscribe([this](const sim::NodeId& node, bool suspected) {
    if (node.kind == sim::NodeKind::kProxy && suspected && gathering_) {
      maybe_process_round();
    }
  });
  if (!obs) {
    own_obs_ = std::make_unique<obs::Observability>();
    obs = own_obs_.get();
  }
  obs_ = obs;
  auto& reg = obs_->registry();
  ins_.rounds = &reg.counter("am.rounds");
  ins_.fine_grain_reconfigs = &reg.counter("am.fine_grain_reconfigs");
  ins_.objects_tuned = &reg.counter("am.objects_tuned");
  ins_.tail_reconfigs = &reg.counter("am.tail_reconfigs");
  ins_.steady_reconfigs = &reg.counter("am.steady_reconfigs");
  ins_.restarts = &reg.counter("am.restarts");
  ins_.round = &reg.gauge("am.round");
  ins_.last_kpi = &reg.gauge("am.last_kpi");
}

AutonomicStats AutonomicManager::stats() const {
  AutonomicStats s;
  s.rounds = ins_.rounds->value();
  s.fine_grain_reconfigs = ins_.fine_grain_reconfigs->value();
  s.objects_tuned = ins_.objects_tuned->value();
  s.tail_reconfigs = ins_.tail_reconfigs->value();
  s.steady_reconfigs = ins_.steady_reconfigs->value();
  s.restarts = ins_.restarts->value();
  return s;
}

void AutonomicManager::start() {
  if (running_) return;
  running_ = true;
  mode_ = Mode::kFineGrain;
  ++generation_;
  emit("autonomic manager started");
  begin_round();
}

void AutonomicManager::stop() {
  running_ = false;
  gathering_ = false;
  ++generation_;
}

void AutonomicManager::emit(const std::string& what) {
  if (on_event_) on_event_(sim_.now(), what);
  obs::Tracer& tracer = obs_->tracer();
  if (tracer.enabled(obs::Category::kAutonomic)) {
    tracer.record(sim_.now(), obs::Category::kAutonomic, "am_event", "am",
                  round_, 0, what);
  }
}

void AutonomicManager::begin_round() {
  if (!running_) return;
  ++round_;
  ins_.rounds->inc();
  ins_.round->set(static_cast<double>(round_));
  reports_.clear();
  gathering_ = true;
  const kv::NewRoundMsg msg{round_, options_.round_window};
  for (const sim::NodeId& proxy : proxies_) net_.send(self_, proxy, msg);
}

void AutonomicManager::on_message(const sim::NodeId& from,
                                  const Message& msg) {
  QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kAm);
  if (!running_) return;
  if (const auto* stats = std::get_if<RoundStatsMsg>(&msg)) {
    handle_round_stats(from, *stats);
  }
}

void AutonomicManager::handle_round_stats(const sim::NodeId& from,
                                          const RoundStatsMsg& stats) {
  // Round fencing: a report from an earlier round (a slow proxy, or a
  // retransmit crossing a round boundary) must not pollute the current
  // gather; re-reporting proxies just overwrite their own slot.
  if (!gathering_ || stats.round != round_) return;
  reports_[from.index] = stats;
  maybe_process_round();
}

void AutonomicManager::maybe_process_round() {
  if (!gathering_) return;
  // Algorithm 1 line 7: wait for every proxy's report or its suspicion.
  for (const sim::NodeId& proxy : proxies_) {
    if (!reports_.contains(proxy.index) && !fd_.suspects(proxy)) return;
  }
  gathering_ = false;
  process_round();
}

std::optional<oracle::WorkloadFeatures> AutonomicManager::features_for(
    std::uint64_t reads, std::uint64_t writes, double avg_size,
    double window_s) const {
  const std::uint64_t total = reads + writes;
  if (total < options_.min_samples_per_object) return std::nullopt;
  oracle::WorkloadFeatures features;
  features.write_ratio =
      static_cast<double>(writes) / static_cast<double>(total);
  features.avg_size_kib = avg_size / 1024.0;
  features.ops_per_sec =
      window_s > 0 ? static_cast<double>(total) / window_s : 0.0;
  return features;
}

int AutonomicManager::predict(std::uint64_t reads, std::uint64_t writes,
                              double avg_size, double window_s) const {
  const auto features = features_for(reads, writes, avg_size, window_s);
  if (!features) return 0;
  const int raw = oracle_.predict_write_quorum(*features);
  return oracle::clamp_write_quorum(raw, options_.constraints, replication_);
}

std::optional<kv::QuorumStrategy> AutonomicManager::predict_tail_strategy(
    const kv::TailStats& tail, double window_s) const {
  const auto features =
      features_for(tail.reads, tail.writes, tail.avg_size_bytes, window_s);
  if (!features) return std::nullopt;
  if (strategy_opt_) {
    kv::QuorumStrategy target = strategy_opt_->optimize(*features);
    if (target.valid(replication_)) return target;
    return std::nullopt;
  }
  const int raw = oracle_.predict_write_quorum(*features);
  const int w =
      oracle::clamp_write_quorum(raw, options_.constraints, replication_);
  if (w <= 0) return std::nullopt;
  return kv::QuorumStrategy(oracle::grid_from_write_quorum(w, replication_));
}

void AutonomicManager::process_round() {
  // ---- merge the per-proxy reports (Algorithm 1 lines 8-9). Ordered maps:
  // the weighted-average merge below is order-sensitive floating-point
  // arithmetic, and both results feed quorum decisions.
  std::map<ObjectId, ObjectStats> merged_topk_map;
  std::map<ObjectId, std::uint64_t> candidate_counts;
  TailStats tail;
  double tail_size_weight = 0;
  double kpi_throughput = 0;
  double latency_weighted = 0;
  std::uint64_t latency_weight = 0;

  for (const auto& [proxy_index, report] : reports_) {
    for (const TopKReport& candidate : report.topk) {
      candidate_counts[candidate.oid] += candidate.count;
    }
    for (const ObjectStats& object_stats : report.stats_topk) {
      ObjectStats& merged = merged_topk_map[object_stats.oid];
      merged.oid = object_stats.oid;
      const std::uint64_t prev_n = merged.reads + merged.writes;
      const std::uint64_t add_n = object_stats.reads + object_stats.writes;
      if (prev_n + add_n > 0) {
        merged.avg_size_bytes =
            (merged.avg_size_bytes * static_cast<double>(prev_n) +
             object_stats.avg_size_bytes * static_cast<double>(add_n)) /
            static_cast<double>(prev_n + add_n);
      }
      merged.reads += object_stats.reads;
      merged.writes += object_stats.writes;
    }
    const std::uint64_t tail_n =
        report.stats_tail.reads + report.stats_tail.writes;
    tail.reads += report.stats_tail.reads;
    tail.writes += report.stats_tail.writes;
    tail_size_weight += report.stats_tail.avg_size_bytes *
                        static_cast<double>(tail_n);
    kpi_throughput += report.throughput_ops;
    const auto ops = static_cast<std::uint64_t>(
        report.throughput_ops * to_seconds(options_.round_window));
    latency_weighted += report.avg_latency_ms * static_cast<double>(ops);
    latency_weight += ops;
  }
  if (tail.reads + tail.writes > 0) {
    tail.avg_size_bytes =
        tail_size_weight / static_cast<double>(tail.reads + tail.writes);
  }
  const double avg_latency =
      latency_weight ? latency_weighted / static_cast<double>(latency_weight)
                     : 0.0;

  // ---- KPI bookkeeping (higher is better for both KPIs). Momentary spikes
  // are rejected by a Hampel filter so they cannot trigger spurious
  // reconfigurations or stop the optimization early (Section 4's outlier
  // filtering [20]).
  const double raw_kpi = options_.kpi == Kpi::kThroughput
                             ? kpi_throughput
                             : (avg_latency > 0 ? 1.0 / avg_latency : 0.0);
  const double kpi =
      options_.filter_kpi_outliers ? kpi_filter_.filter(raw_kpi) : raw_kpi;
  kpi_trend_.update(kpi);
  if (have_kpi_ && last_kpi_ > 0) {
    improvements_.push_back((kpi - last_kpi_) / last_kpi_);
    if (improvements_.size() > options_.improvement_window) {
      improvements_.pop_front();
    }
  }
  last_kpi_ = kpi;
  ins_.last_kpi->set(kpi);
  have_kpi_ = true;

  std::vector<ObjectStats> merged_topk;
  merged_topk.reserve(merged_topk_map.size());
  for (auto& [oid, object_stats] : merged_topk_map) {
    merged_topk.push_back(object_stats);  // already in oid order
  }

  std::vector<TopKReport> candidates;
  candidates.reserve(candidate_counts.size());
  for (const auto& [oid, count] : candidate_counts) {
    candidates.push_back(TopKReport{oid, count, 0});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const TopKReport& a, const TopKReport& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.oid < b.oid;
            });

  if (mode_ == Mode::kFineGrain) {
    process_fine_grain(merged_topk, tail, std::move(candidates));
  } else {
    process_steady(merged_topk, tail);
  }
}

void AutonomicManager::process_fine_grain(
    const std::vector<ObjectStats>& merged_topk, const TailStats& tail,
    std::vector<TopKReport> merged_candidates) {
  const double window_s = to_seconds(options_.round_window);

  // ---- 1. tune the objects monitored during the round that just ended.
  QuorumChange change;
  change.is_global = false;
  for (const ObjectStats& object_stats : merged_topk) {
    const int w = predict(object_stats.reads, object_stats.writes,
                          object_stats.avg_size_bytes, window_s);
    if (w <= 0) continue;
    const QuorumConfig target = oracle::grid_from_write_quorum(w, replication_);
    if (rm_.quorum_for(object_stats.oid) != target) {
      change.overrides.emplace_back(object_stats.oid, target);
    }
  }

  // ---- 2. pick the next top-k objects to monitor.
  std::vector<ObjectId> next_monitored;
  {
    std::unordered_set<ObjectId> taken;
    for (const auto& [oid, q] : rm_.config().overrides) taken.insert(oid);
    for (const auto& [oid, q] : change.overrides) taken.insert(oid);
    for (const TopKReport& candidate : merged_candidates) {
      if (next_monitored.size() >= options_.topk_per_round) break;
      if (taken.contains(candidate.oid)) continue;
      next_monitored.push_back(candidate.oid);
    }
  }

  // ---- 3. stopping rule (Algorithm 1 line 17): average KPI improvement
  // over the last γ rounds must stay above θ, once enough rounds ran.
  bool keep_going = true;
  if (improvements_.size() >= options_.improvement_window) {
    double avg = 0;
    for (double delta : improvements_) avg += delta;
    avg /= static_cast<double>(improvements_.size());
    if (avg < options_.improvement_threshold) keep_going = false;
  }
  if (round_ >= 2 && next_monitored.empty() && change.overrides.empty()) {
    keep_going = false;  // nothing left to optimize (or k = 0: tail-only)
  }

  const std::uint64_t generation = generation_;
  auto continue_round = [this, generation, keep_going, tail,
                         next_monitored](bool reconfigured) {
    if (!running_ || generation != generation_) return;
    if (keep_going) {
      broadcast_new_topk(next_monitored);
      schedule_next_round(reconfigured);
    } else {
      finish_fine_grain(tail);
    }
  };

  if (!change.overrides.empty()) {
    ins_.fine_grain_reconfigs->inc();
    ins_.objects_tuned->inc(change.overrides.size());
    emit("fine-grain reconfiguration of " +
         std::to_string(change.overrides.size()) + " object(s)");
    rm_.change_configuration(
        std::move(change),
        [continue_round](bool ok) { continue_round(ok); });
  } else {
    continue_round(false);
  }
}

void AutonomicManager::finish_fine_grain(const TailStats& tail) {
  // Algorithm 1 lines 18-23: coarse optimization of the access-distribution
  // tail, treated in bulk from its aggregate profile.
  mode_ = Mode::kSteady;
  steady_baseline_.reset();
  steady_baseline_.add(last_kpi_);
  last_tail_prediction_.reset();
  last_object_prediction_.clear();
  emit("fine-grain optimization converged after round " +
       std::to_string(round_));

  auto after = [this, generation = generation_](bool) {
    if (!running_ || generation != generation_) return;
    if (options_.steady_monitoring) {
      broadcast_new_topk({});
      schedule_next_round(true);
    } else {
      running_ = false;
      emit("autonomic manager finished");
    }
  };

  if (options_.tail_optimization) {
    const double window_s = to_seconds(options_.round_window);
    const auto target = predict_tail_strategy(tail, window_s);
    if (target && rm_.config().default_q != *target) {
      ins_.tail_reconfigs->inc();
      if (target->is_majority()) {
        emit("tail reconfiguration to R=" +
             std::to_string(target->grid.read_q) +
             " W=" + std::to_string(target->grid.write_q));
      } else {
        emit("tail reconfiguration to " + target->describe());
      }
      QuorumChange change;
      change.is_global = true;
      change.global = *target;
      rm_.change_configuration(std::move(change), after);
      return;
    }
  }
  after(false);
}

void AutonomicManager::process_steady(
    const std::vector<ObjectStats>& merged_topk, const TailStats& tail) {
  const double window_s = to_seconds(options_.round_window);

  // ---- restart detection. Two complementary triggers: a marked KPI drop
  // w.r.t. the converged baseline (degradation under the current quorums),
  // and a Page-Hinkley detection of a statistically sustained shift of the
  // tail write ratio (the workload changed even if the KPI has not yet
  // collapsed — Section 4's shift detection [32]).
  const double baseline = steady_baseline_.mean();
  const bool kpi_dropped =
      baseline > 0 &&
      last_kpi_ < baseline * (1.0 - options_.restart_drop_fraction);
  bool workload_shifted = false;
  if (options_.detect_workload_shift && tail.reads + tail.writes > 0) {
    workload_shifted = workload_shift_.update(tail.write_ratio());
  }
  if (kpi_dropped || workload_shifted) {
    ins_.restarts->inc();
    emit(std::string(kpi_dropped ? "KPI drop" : "workload shift") +
         " detected; restarting fine-grain optimization");
    mode_ = Mode::kFineGrain;
    improvements_.clear();
    have_kpi_ = false;
    last_tail_prediction_.reset();
    last_object_prediction_.clear();
    broadcast_new_topk({});
    schedule_next_round(false);
    return;
  }
  steady_baseline_.add(last_kpi_);

  // ---- drift checks: re-evaluate the rotating subset of tuned objects we
  // monitored this round, and the tail default. Per-object hysteresis:
  // reconfigure only when two consecutive evaluations of an object agree on
  // a configuration that differs from the installed one.
  QuorumChange change;
  change.is_global = false;
  for (const ObjectStats& object_stats : merged_topk) {
    const int w = predict(object_stats.reads, object_stats.writes,
                          object_stats.avg_size_bytes, window_s);
    if (w <= 0) continue;
    const QuorumConfig target = oracle::grid_from_write_quorum(w, replication_);
    if (rm_.quorum_for(object_stats.oid) != target) {
      auto [it, inserted] =
          last_object_prediction_.try_emplace(object_stats.oid, target);
      if (!options_.drift_hysteresis || (!inserted && it->second == target)) {
        change.overrides.emplace_back(object_stats.oid, target);
      }
      it->second = target;
    } else {
      last_object_prediction_.erase(object_stats.oid);
    }
  }

  // Hysteresis: only move the tail default when two consecutive rounds
  // predict the same deviating configuration — single-round flaps near a
  // decision boundary would otherwise cause reconfiguration churn.
  bool tail_change = false;
  kv::QuorumStrategy tail_target;
  const auto tail_predicted = predict_tail_strategy(tail, window_s);
  if (tail_predicted) {
    tail_target = *tail_predicted;
    if (rm_.config().default_q != tail_target) {
      tail_change =
          !options_.drift_hysteresis || last_tail_prediction_ == tail_target;
    }
    last_tail_prediction_ = tail_target;
  } else {
    last_tail_prediction_.reset();
  }

  // ---- choose the next rotating monitored subset among tuned objects.
  std::vector<ObjectId> next_monitored;
  {
    const auto& overrides = rm_.config().overrides;
    if (!overrides.empty()) {
      for (std::size_t i = 0;
           i < std::min(options_.topk_per_round, overrides.size()); ++i) {
        next_monitored.push_back(
            overrides[(steady_rotation_ + i) % overrides.size()].first);
      }
      steady_rotation_ =
          (steady_rotation_ + options_.topk_per_round) % overrides.size();
    }
  }

  const std::uint64_t generation = generation_;
  auto proceed = [this, generation, next_monitored](bool reconfigured) {
    if (!running_ || generation != generation_) return;
    broadcast_new_topk(next_monitored);
    schedule_next_round(reconfigured);
  };

  if (!change.overrides.empty() || tail_change) {
    ins_.steady_reconfigs->inc();
    emit("steady-state drift reconfiguration");
    if (tail_change) {
      QuorumChange global_change;
      global_change.is_global = true;
      global_change.global = tail_target;
      rm_.change_configuration(std::move(global_change), {});
    }
    if (!change.overrides.empty()) {
      rm_.change_configuration(std::move(change),
                               [proceed](bool ok) { proceed(ok); });
    } else {
      // Tail change only; the RM serializes it, continue after quarantine.
      proceed(true);
    }
  } else {
    proceed(false);
  }
}

void AutonomicManager::broadcast_new_topk(std::vector<ObjectId> monitored) {
  monitored_ = std::move(monitored);
  const kv::NewTopKMsg msg{round_, monitored_};
  for (const sim::NodeId& proxy : proxies_) net_.send(self_, proxy, msg);
}

void AutonomicManager::schedule_next_round(bool reconfigured) {
  const Duration delay = reconfigured ? options_.quarantine : 0;
  const std::uint64_t generation = generation_;
  sim_.after(delay, [this, generation] {
    QOPT_PROFILE_SCOPE(obs_, obs::ProfSubsystem::kAm);
    if (!running_ || generation != generation_) return;
    begin_round();
  });
}

}  // namespace qopt::autonomic
