// Robust signal-processing components for the autonomic loop.
//
// Section 4 of the paper: "the system may be made more robust by
// introducing techniques to filter out outliers [20], detect statistically
// relevant shifts of system's metrics [32], or predict future workload
// trends [22]". This module provides all three:
//
//  * OutlierFilter   — Hampel-style rejector: samples further than
//    `threshold` scaled MADs from the rolling median are replaced by the
//    median (momentary spikes never reach the optimizer);
//  * ShiftDetector   — two-sided Page-Hinkley test: flags a statistically
//    sustained change of the monitored metric's mean, far more robust than
//    a single-sample threshold;
//  * TrendPredictor  — Holt double exponential smoothing: short-horizon
//    forecast of a KPI or workload feature, letting the manager tune for
//    where the workload is heading.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace qopt::autonomic {

class OutlierFilter {
 public:
  /// `window` is the rolling window size; `threshold` the number of scaled
  /// median-absolute-deviations beyond which a sample is an outlier. The
  /// defaults give a <1% false-positive rate on uniform noise (the worst
  /// case for a MAD estimate) while still catching 3x spikes.
  explicit OutlierFilter(std::size_t window = 15, double threshold = 4.0);

  /// Feeds one sample; returns the filtered value (the sample itself, or
  /// the rolling median if the sample is an outlier).
  double filter(double sample);

  /// Whether the most recent call to filter() rejected its sample.
  bool last_was_outlier() const noexcept { return last_was_outlier_; }
  std::size_t outliers_rejected() const noexcept { return rejected_; }
  void reset();

 private:
  double rolling_median() const;
  double rolling_mad(double median) const;

  std::size_t window_;
  double threshold_;
  std::deque<double> samples_;
  bool last_was_outlier_ = false;
  std::size_t rejected_ = 0;
  std::size_t consecutive_rejects_ = 0;
};

class ShiftDetector {
 public:
  /// `delta` is the magnitude of drift considered negligible (as a fraction
  /// of the running mean); `lambda` the detection threshold (same units).
  /// Larger lambda = fewer false alarms, slower detection.
  explicit ShiftDetector(double delta = 0.05, double lambda = 0.5);

  /// Feeds one sample; returns true when a sustained shift (up or down) is
  /// detected. Detection resets the statistic (ready to detect the next
  /// shift).
  bool update(double sample);

  std::size_t shifts_detected() const noexcept { return shifts_; }
  double running_mean() const noexcept { return mean_; }
  void reset();

 private:
  double delta_;
  double lambda_;
  double mean_ = 0;
  std::size_t count_ = 0;
  double cum_up_ = 0;    // cumulative deviation statistic, upward
  double cum_down_ = 0;  // downward
  double min_up_ = 0;
  double max_down_ = 0;
  std::size_t shifts_ = 0;
};

class TrendPredictor {
 public:
  /// Holt's linear method: `alpha` smooths the level, `beta` the trend.
  explicit TrendPredictor(double alpha = 0.5, double beta = 0.3);

  void update(double sample);
  /// Forecast `steps` rounds ahead (0 = current smoothed level).
  double forecast(std::size_t steps = 1) const;
  bool ready() const noexcept { return count_ >= 2; }
  double level() const noexcept { return level_; }
  double trend() const noexcept { return trend_; }
  void reset();

 private:
  double alpha_;
  double beta_;
  double level_ = 0;
  double trend_ = 0;
  std::size_t count_ = 0;
};

}  // namespace qopt::autonomic
