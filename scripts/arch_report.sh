#!/usr/bin/env bash
# Runs the qopt_arch architecture scan and regenerates the module-graph
# exports (build/module_graph.dot, build/module_graph.json).
#
# Usage: scripts/arch_report.sh [--suppressions]
#   scripts/arch_report.sh                  # scan + exports; exit 1 on findings
#   scripts/arch_report.sh --suppressions   # also list every justified allow
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target qopt_arch >/dev/null

./build/tools/qopt_arch \
  --manifest docs/ARCHITECTURE.toml --root . \
  --dot build/module_graph.dot --json build/module_graph.json \
  "$@" \
  src tools tests bench examples

echo "module graph: build/module_graph.dot build/module_graph.json"
