#!/usr/bin/env bash
# Runs the qopt_arch architecture scan and regenerates the module-graph
# exports (build/module_graph.dot, build/module_graph.json).
#
# Usage: scripts/arch_report.sh [--suppressions]
#   scripts/arch_report.sh                  # scan + exports; exit 1 on findings
#   scripts/arch_report.sh --suppressions   # also list every justified allow
source "$(dirname "$0")/analysis_report_common.sh"
build_analyzer qopt_arch

./build/tools/qopt_arch \
  --manifest docs/ARCHITECTURE.toml --root . \
  --dot build/module_graph.dot --json build/module_graph.json \
  "$@" \
  src tools tests bench examples

echo "module graph: build/module_graph.dot build/module_graph.json"
