#!/usr/bin/env bash
# Builds the whole tree under sanitizers and runs the test suite.
#
# Usage: scripts/sanitize.sh [preset...] [-- extra ctest args...]
#   scripts/sanitize.sh                 # asan-ubsan and tsan, in sequence
#   scripts/sanitize.sh asan-ubsan      # address+UB only
#   scripts/sanitize.sh tsan            # thread sanitizer only
#   scripts/sanitize.sh tsan -- -R smr  # forward args to ctest
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

presets=()
ctest_args=()
parsing_presets=1
for arg in "$@"; do
  if [[ "$arg" == "--" ]]; then
    parsing_presets=0
  elif [[ $parsing_presets -eq 1 ]]; then
    presets+=("$arg")
  else
    ctest_args+=("$arg")
  fi
done
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(asan-ubsan tsan)
fi

for preset in "${presets[@]}"; do
  echo "==== sanitize: ${preset} ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs" "${ctest_args[@]+"${ctest_args[@]}"}"
done
