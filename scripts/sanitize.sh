#!/usr/bin/env bash
# Builds the whole tree under ASan+UBSan and runs the test suite.
# Usage: scripts/sanitize.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs" "$@"
