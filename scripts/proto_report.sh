#!/usr/bin/env bash
# Runs the qopt_proto wire-protocol conformance scan against the committed
# manifest (docs/PROTOCOL.toml) and diffs the wire-header inventory against
# the manifest inventory (empty diff = the record matches the code).
#
# Usage: scripts/proto_report.sh [--suppressions]
#   scripts/proto_report.sh                  # scan + inventory diff; exit 1 on findings
#   scripts/proto_report.sh --suppressions   # also list every justified allow
source "$(dirname "$0")/analysis_report_common.sh"
build_analyzer qopt_proto

./build/tools/qopt_proto --manifest docs/PROTOCOL.toml --root . "$@"

./build/tools/qopt_proto --manifest docs/PROTOCOL.toml --root . \
  --dump-wire > build/qopt_proto_wire.txt
./build/tools/qopt_proto --manifest docs/PROTOCOL.toml --root . \
  --dump-manifest > build/qopt_proto_manifest.txt
diff -u build/qopt_proto_wire.txt build/qopt_proto_manifest.txt
echo "inventories agree: build/qopt_proto_wire.txt build/qopt_proto_manifest.txt"
