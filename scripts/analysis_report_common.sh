# Shared plumbing for the analyzer report scripts (perf/arch/proto): move
# to the repository root, pick a parallelism level, and configure + build
# the requested analyzer target. Sourced, not executed.
#
#   source "$(dirname "$0")/analysis_report_common.sh"
#   build_analyzer qopt_perf
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

build_analyzer() {
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target "$1" >/dev/null
}
