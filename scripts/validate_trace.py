#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file exported by the span layer.

Used by the CI `trace-validate` job: a seeded cluster run must produce a
well-formed, Perfetto-loadable document. Checks:

  * the file parses as JSON with a non-empty ``traceEvents`` array;
  * every event carries ``ph``/``name``/``pid``/``tid``;
  * every complete ("X") event has numeric ``ts``/``dur`` >= 0;
  * at least one "X" event exists (metadata alone is not a trace).

Exit 0 on success, 1 with a diagnostic on the first violation.
"""
import json
import sys


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <trace.json>")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    complete = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event {index}: not an object")
        for key in ("ph", "name", "pid", "tid"):
            if key not in event:
                fail(f"event {index}: missing '{key}'")
        if event["ph"] == "X":
            complete += 1
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    fail(f"event {index}: bad '{key}': {value!r}")
    if complete == 0:
        fail(f"{path}: no complete ('X') span events")

    print(f"validate_trace: OK: {len(events)} events "
          f"({complete} spans) in {path}")


if __name__ == "__main__":
    main()
