#!/usr/bin/env bash
# Runs the qopt_perf hot-path scan against the committed ratchet baseline
# (tools/qopt_perf/baseline.txt).
#
# Usage: scripts/perf_report.sh [--update-baseline | --suppressions]
#   scripts/perf_report.sh                    # ratchet scan; exit 1 on regression
#   scripts/perf_report.sh --update-baseline  # record fixed findings (counts
#                                             # may only go down)
#   scripts/perf_report.sh --suppressions     # list every justified allow
source "$(dirname "$0")/analysis_report_common.sh"
build_analyzer qopt_perf

./build/tools/qopt_perf \
  --manifest docs/HOT_PATHS.toml --root . \
  --baseline tools/qopt_perf/baseline.txt \
  "$@" \
  src tools tests bench examples

echo "baseline: tools/qopt_perf/baseline.txt"
