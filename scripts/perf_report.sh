#!/usr/bin/env bash
# Runs the qopt_perf hot-path scan against the committed ratchet baseline
# (tools/qopt_perf/baseline.txt).
#
# Usage: scripts/perf_report.sh [--update-baseline | --suppressions]
#   scripts/perf_report.sh                    # ratchet scan; exit 1 on regression
#   scripts/perf_report.sh --update-baseline  # record fixed findings (counts
#                                             # may only go down)
#   scripts/perf_report.sh --suppressions     # list every justified allow
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target qopt_perf >/dev/null

./build/tools/qopt_perf \
  --manifest docs/HOT_PATHS.toml --root . \
  --baseline tools/qopt_perf/baseline.txt \
  "$@" \
  src tools tests bench examples

echo "baseline: tools/qopt_perf/baseline.txt"
