#!/usr/bin/env bash
# Schema gate for the committed engine benchmark artifact.
#
# BENCH_engine.json is a committed before/after trajectory: PRs regenerate
# it, and downstream tooling (CI trend plots, the README table) reads its
# keys. This gate runs the bench in its deterministic profiled form and
# fails when the key set of the freshly generated JSON drifts from the
# committed artifact — a rename/removal must come with a regenerated
# artifact in the same commit, never silently.
#
# Usage: bench_schema_check.sh <engine_events_per_sec binary> <committed json>
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <engine_events_per_sec binary> <committed BENCH_engine.json>" >&2
  exit 2
fi
bench_bin=$1
committed=$2

workdir=$(mktemp -d)
trap 'rm -rf "${workdir}"' EXIT

"${bench_bin}" --deterministic --profile --out "${workdir}/fresh.json" \
  > /dev/null

# The schema is the sorted set of JSON object keys. Values differ between
# the committed (wall-clock) and fresh (deterministic) artifacts by design;
# the key set must not.
keys() {
  grep -o '"[A-Za-z0-9_]*"[[:space:]]*:' "$1" | tr -d ' :' | sort -u
}

keys "${committed}" > "${workdir}/committed.keys"
keys "${workdir}/fresh.json" > "${workdir}/fresh.keys"

if ! diff -u "${workdir}/committed.keys" "${workdir}/fresh.keys"; then
  echo "" >&2
  echo "BENCH_engine.json schema drift: the bench now emits a different" >&2
  echo "key set than the committed artifact. Regenerate it with:" >&2
  echo "    ${bench_bin} --profile --out BENCH_engine.json" >&2
  echo "and commit the result alongside the bench change." >&2
  exit 1
fi
echo "BENCH_engine.json schema OK ($(wc -l < "${workdir}/committed.keys") keys)"
