// Multi-tenant SDS scenario: three tenants with opposing access profiles
// share one store. Q-OPT assigns different quorums to different tenants'
// hot objects (per-item granularity) while the tail keeps a common
// configuration — the use case motivating Section 1's "multiple tenants
// with different profiles".
//
// Build & run:   ./build/examples/multi_tenant_store
#include <cstdio>

#include "autonomic/autonomic_manager.hpp"
#include "core/cluster.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace qopt;

  constexpr std::uint64_t kKeysPerTenant = 3'000;
  ClusterConfig config;
  config.num_proxies = 3;  // one proxy per tenant
  config.clients_per_proxy = 10;
  config.seed = 12;

  Cluster cluster(config);
  cluster.preload(3 * kKeysPerTenant, 4096);

  // Tenant "photos": 95% reads. Tenant "backup": 99% writes. Tenant
  // "sessions": 50/50. Each tenant has its own key namespace and zipfian
  // hot set.
  cluster.set_workload_for_proxy(0, workload::ycsb_b(kKeysPerTenant, 4096, 0));
  cluster.set_workload_for_proxy(
      1, workload::backup_c(kKeysPerTenant, 4096, kKeysPerTenant));
  cluster.set_workload_for_proxy(
      2, workload::ycsb_a(kKeysPerTenant, 4096, 2 * kKeysPerTenant));

  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(5);
  tuning.topk_per_round = 16;
  cluster.enable_autotuning(tuning);
  cluster.am()->set_event_callback([](Time t, const std::string& what) {
    std::printf("[%6.1fs] %s\n", to_seconds(t), what.c_str());
  });

  cluster.run_for(seconds(120));

  std::printf("\nper-object overrides installed: %zu\n",
              cluster.rm().config().overrides.size());
  int per_tenant_counts[3] = {0, 0, 0};
  int write_optimized = 0;
  int read_optimized = 0;
  for (const auto& [oid, quorum] : cluster.rm().config().overrides) {
    ++per_tenant_counts[oid / kKeysPerTenant];
    if (quorum.write_footprint() <= 2) ++write_optimized;
    if (quorum.read_footprint() <= 2) ++read_optimized;
  }
  std::printf("  photos tenant (read-heavy):  %d tuned objects\n",
              per_tenant_counts[0]);
  std::printf("  backup tenant (write-heavy): %d tuned objects\n",
              per_tenant_counts[1]);
  std::printf("  session tenant (mixed):      %d tuned objects\n",
              per_tenant_counts[2]);
  std::printf("  read-optimized (R<=2): %d, write-optimized (W<=2): %d\n",
              read_optimized, write_optimized);
  const Time end = cluster.now();
  std::printf("steady throughput: %.0f ops/s, consistency violations: %zu\n",
              cluster.metrics().throughput(end - seconds(30), end),
              cluster.checker().violations().size());
  return cluster.checker().clean() ? 0 : 1;
}
