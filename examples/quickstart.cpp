// Quickstart: bring up a Q-OPT cluster, run a read-mostly YCSB-B workload
// under a deliberately bad static quorum, then enable Q-OPT's autonomic
// tuning and watch throughput recover.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "autonomic/autonomic_manager.hpp"
#include "core/cluster.hpp"
#include "core/experiment.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace qopt;

  ClusterConfig config;  // defaults mirror the paper's 20-VM testbed
  config.seed = 7;
  // Start from a write-optimized quorum (R=5, W=1) — the worst choice for
  // the read-dominated workload we are about to run.
  config.initial_quorum = {5, 1};

  Cluster cluster(config);

  constexpr std::uint64_t kObjects = 20'000;
  cluster.preload(kObjects, 4096);
  cluster.set_workload(workload::ycsb_b(kObjects));  // 95% reads

  // Phase 1: static misconfigured quorum.
  cluster.run_for(seconds(20));
  const Time phase1_end = cluster.now();
  const double static_tput = cluster.metrics().throughput(0, phase1_end);
  std::printf("static  (R=5,W=1): %8.0f ops/s\n", static_tput);

  // Phase 2: turn Q-OPT on (Autonomic Manager + Oracle + Reconfiguration
  // Manager) and let it retune the store while it keeps serving requests.
  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(5);
  cluster.enable_autotuning(tuning);
  cluster.run_for(seconds(150));

  const Time end = cluster.now();
  const double tuned_tput =
      cluster.metrics().throughput(end - seconds(30), end);
  std::printf("Q-OPT   (tuned)  : %8.0f ops/s  (%.2fx)\n", tuned_tput,
              tuned_tput / static_tput);
  std::printf("default quorum now: R=%d W=%d\n",
              cluster.rm().config().default_q.read_footprint(),
              cluster.rm().config().default_q.write_footprint());
  std::printf("reads checked: %llu, consistency violations: %zu\n",
              static_cast<unsigned long long>(cluster.checker().reads_checked()),
              cluster.checker().violations().size());
  return cluster.checker().clean() ? 0 : 1;
}
