// qopt_cli — parameterized simulator CLI.
//
// Drives a full cluster from the command line: workload mix, object size,
// topology, static quorum or Q-OPT autotuning, failure injection, and
// human/CSV/JSON output — all three render the same Cluster::report().
// Useful for exploring the configuration space without writing code.
//
// Examples:
//   ./build/examples/qopt_cli --workload ycsb-b --read-q 1 --write-q 5
//   ./build/examples/qopt_cli --workload sweep --write-ratio 0.7
//       --object-bytes 65536 --autotune --duration 120
//   ./build/examples/qopt_cli --workload ycsb-a --autotune
//       --crash-proxy 2 --crash-at 30 --csv
//   ./build/examples/qopt_cli --workload sweep --write-ratio 0.5
//       --strategy-optimizer
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "autonomic/autonomic_manager.hpp"
#include "core/cluster.hpp"
#include "core/nemesis.hpp"
#include "kv/quorum.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/span_export.hpp"
#include "obs/trace.hpp"
#include "oracle/strategy_optimizer.hpp"
#include "sim/ids.hpp"
#include "util/flags.hpp"
#include "util/time.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace {

void usage() {
  std::printf(
      "qopt_cli — Q-OPT cluster simulator\n\n"
      "workload:   --workload ycsb-a|ycsb-b|backup-c|sweep   (default ycsb-a)\n"
      "            --write-ratio F   (sweep only, default 0.5)\n"
      "            --objects N       (default 10000)\n"
      "            --object-bytes N  (default 4096)\n"
      "topology:   --storage N --proxies N --clients-per-proxy N\n"
      "            --replication N   (default 5)\n"
      "            --rm-replicas N   (replicated RM with leader failover;\n"
      "                               default 1 = single RM)\n"
      "quorum:     --read-q N --write-q N   (static; default 3/3)\n"
      "            --autotune [--round-window S] [--topk N]\n"
      "            --strategy-optimizer  (autotune with the quoracle-style\n"
      "             strategy optimizer: tail reconfigurations may install\n"
      "             weighted non-majority quorum systems; implies --autotune)\n"
      "run:        --duration S (default 60) --warmup S (default 5)\n"
      "            --seed N --csv --json\n"
      "tracing:    --trace-out FILE   (causal spans, Chrome trace_event JSON\n"
      "                                — load in Perfetto / chrome://tracing)\n"
      "            --trace-csv FILE   (same spans as flat CSV)\n"
      "            --trace-sample N   (every Nth trace per kind; default 1)\n"
      "            --trace-events FILE  (obs tracer JSON, all categories)\n"
      "            --record-ops FILE  (record the executed workload ops)\n"
      "profiling:  --profile          (engine self-profiler: per-subsystem\n"
      "                                cost attribution + queue telemetry in\n"
      "                                the report; see docs/OBSERVABILITY.md)\n"
      "            --profile-trace FILE  (per-event timeline, Chrome\n"
      "                                trace_event JSON; implies --profile)\n"
      "faults:     --crash-proxy I --crash-storage I --crash-at S\n"
      "            --anti-entropy\n"
      "            --nemesis [--nemesis-interval MS]  (chaos schedule)\n"
      "            --nemesis-partitions  (adds partition/loss-burst/restart\n"
      "                                   events to the --nemesis schedule)\n"
      "            --nemesis-rm  (adds RM-leader crash/partition events to\n"
      "                           the --nemesis schedule; needs\n"
      "                           --rm-replicas >= 3)\n"
      "network:    --net-loss P   (per-message drop probability, [0,1])\n"
      "            --net-dup P    (per-message duplication probability)\n"
      "            --retry-budget N   (proxy retransmit rounds; default 6,\n"
      "                                0 = never retransmit or fail ops)\n"
      "            --client-retry MS  (client proxy-failover timeout;\n"
      "                                defaults to 1000 on lossy links)\n"
      "            --partition s0,s1@START+HOLD  (isolate the listed nodes\n"
      "             at START seconds, heal HOLD seconds later; sN = storage\n"
      "             node N, pN = proxy N)\n");
}

// A scheduled "--partition s0,s1@10+2" request: isolate the listed nodes
// at `start` seconds, heal `hold` seconds later.
struct PartitionSpec {
  std::vector<qopt::sim::NodeId> nodes;
  double start = 0;
  double hold = 0;
};

bool parse_partition(const std::string& spec, const qopt::ClusterConfig& config,
                     PartitionSpec* out) {
  const std::size_t at = spec.find('@');
  const std::size_t plus = spec.find('+', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || plus == std::string::npos || at == 0) {
    std::fprintf(stderr, "--partition: expected NODES@START+HOLD, got %s\n",
                 spec.c_str());
    return false;
  }
  std::string nodes = spec.substr(0, at);
  while (!nodes.empty()) {
    const std::size_t comma = nodes.find(',');
    const std::string token = nodes.substr(0, comma);
    nodes = comma == std::string::npos ? "" : nodes.substr(comma + 1);
    if (token.size() < 2 || (token[0] != 's' && token[0] != 'p')) {
      std::fprintf(stderr, "--partition: bad node %s (want sN or pN)\n",
                   token.c_str());
      return false;
    }
    char* end = nullptr;
    const unsigned long index = std::strtoul(token.c_str() + 1, &end, 10);
    const auto limit = token[0] == 's' ? config.num_storage
                                       : config.num_proxies;
    if (*end != '\0' || index >= limit) {
      std::fprintf(stderr, "--partition: node %s out of range (limit %u)\n",
                   token.c_str(), limit);
      return false;
    }
    const auto i = static_cast<std::uint32_t>(index);
    out->nodes.push_back(token[0] == 's' ? qopt::sim::storage_id(i)
                                         : qopt::sim::proxy_id(i));
  }
  char* end = nullptr;
  out->start = std::strtod(spec.c_str() + at + 1, &end);
  out->hold = std::strtod(spec.c_str() + plus + 1, nullptr);
  if (out->nodes.empty() || out->start < 0 || out->hold <= 0) {
    std::fprintf(stderr, "--partition: bad schedule in %s\n", spec.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qopt;
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    usage();
    return 0;
  }

  ClusterConfig config;
  config.num_storage =
      static_cast<std::uint32_t>(flags.get_int("storage", 10));
  config.num_proxies =
      static_cast<std::uint32_t>(flags.get_int("proxies", 5));
  config.clients_per_proxy =
      static_cast<std::uint32_t>(flags.get_int("clients-per-proxy", 10));
  config.replication = static_cast<int>(flags.get_int("replication", 5));
  config.rm_replicas =
      static_cast<std::uint32_t>(flags.get_int("rm-replicas", 1));
  config.initial_quorum =
      kv::QuorumConfig::of(static_cast<int>(flags.get_int("read-q", 3)),
                           static_cast<int>(flags.get_int("write-q", 3)));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  config.net_loss = flags.get_double("net-loss", 0.0);
  config.net_duplication = flags.get_double("net-dup", 0.0);
  if (config.net_loss < 0 || config.net_loss > 1 ||
      config.net_duplication < 0 || config.net_duplication > 1) {
    std::fprintf(stderr,
                 "--net-loss/--net-dup must be probabilities in [0, 1]\n");
    return 2;
  }
  const std::int64_t retry_budget = flags.get_int("retry-budget", 6);
  if (retry_budget < 0) {
    std::fprintf(stderr, "--retry-budget must be >= 0\n");
    return 2;
  }
  config.proxy.retry_budget = static_cast<int>(retry_budget);

  PartitionSpec partition;
  const std::string partition_spec = flags.get_string("partition", "");
  if (!partition_spec.empty() &&
      !parse_partition(partition_spec, config, &partition)) {
    return 2;
  }

  // Proxies retransmit lost storage RPCs, but the client<->proxy hop has no
  // retransmit of its own — the client's proxy-failover timer is the
  // at-least-once layer there. Default it on whenever links can drop.
  const bool nemesis_partitions = flags.get_bool("nemesis-partitions", false);
  const bool nemesis_rm = flags.get_bool("nemesis-rm", false);
  if (nemesis_rm && config.rm_replicas < 3) {
    std::fprintf(stderr, "--nemesis-rm needs --rm-replicas >= 3 (a single "
                         "RM fault must leave a live majority)\n");
    return 2;
  }
  const bool lossy = config.net_loss > 0 || nemesis_partitions;
  config.client_retry_timeout =
      milliseconds(flags.get_int("client-retry", lossy ? 1000 : 0));

  const auto objects =
      static_cast<std::uint64_t>(flags.get_int("objects", 10'000));
  const auto object_bytes =
      static_cast<std::uint64_t>(flags.get_int("object-bytes", 4096));
  const std::string workload_name = flags.get_string("workload", "ycsb-a");
  const double duration_s = flags.get_double("duration", 60);
  const double warmup_s = flags.get_double("warmup", 5);
  const bool csv = flags.get_bool("csv", false);
  const bool json = flags.get_bool("json", false);
  const std::string trace_events = flags.get_string("trace-events", "");

  std::shared_ptr<workload::OperationSource> source;
  if (workload_name == "ycsb-a") {
    source = workload::ycsb_a(objects, object_bytes);
  } else if (workload_name == "ycsb-b") {
    source = workload::ycsb_b(objects, object_bytes);
  } else if (workload_name == "backup-c") {
    source = workload::backup_c(objects, object_bytes);
  } else if (workload_name == "sweep") {
    source = workload::sweep_point(flags.get_double("write-ratio", 0.5),
                                   object_bytes, objects);
  } else {
    std::fprintf(stderr, "unknown --workload %s\n", workload_name.c_str());
    usage();
    return 2;
  }

  std::shared_ptr<workload::RecordingSource> recorder;
  const std::string record_ops = flags.get_string("record-ops", "");
  if (!record_ops.empty()) {
    recorder = std::make_shared<workload::RecordingSource>(source);
    source = recorder;
  }

  const std::string trace_out = flags.get_string("trace-out", "");
  const std::string trace_csv = flags.get_string("trace-csv", "");
  if (!trace_out.empty() || !trace_csv.empty()) {
    config.span_sample_every =
        static_cast<std::uint32_t>(flags.get_int("trace-sample", 1));
  }
  const std::string profile_trace = flags.get_string("profile-trace", "");
  config.profile = flags.get_bool("profile", false) || !profile_trace.empty();

  Cluster cluster(config);
  if (!profile_trace.empty()) {
    // Per-event timeline slices; bounded so a long run degrades to a
    // truncated trace (timeline_dropped in the report) rather than OOM.
    cluster.obs().profiler().enable_timeline(1u << 20);
  }
  if (!trace_events.empty()) cluster.obs().tracer().enable_all();
  cluster.preload(objects, object_bytes);
  cluster.set_workload(source);

  const bool strategy_optimizer = flags.get_bool("strategy-optimizer", false);
  if (flags.get_bool("autotune", false) || strategy_optimizer) {
    autonomic::AutonomicOptions tuning;
    tuning.round_window =
        seconds(flags.get_double("round-window", 10));
    tuning.topk_per_round =
        static_cast<std::size_t>(flags.get_int("topk", 8));
    if (strategy_optimizer) {
      cluster.enable_autotuning(tuning, std::make_shared<oracle::StrategyOptimizer>(
                                            config.replication));
    } else {
      cluster.enable_autotuning(tuning);
    }
    if (!csv) {
      cluster.am()->set_event_callback([](Time t, const std::string& what) {
        std::printf("# [%7.1fs] %s\n", to_seconds(t), what.c_str());
      });
    }
  }
  if (flags.get_bool("anti-entropy", false)) cluster.enable_anti_entropy();

  std::unique_ptr<Nemesis> nemesis;
  if (flags.get_bool("nemesis", false) || nemesis_partitions || nemesis_rm) {
    NemesisOptions chaos;
    chaos.mean_interval =
        milliseconds(flags.get_int("nemesis-interval", 500));
    chaos.seed = config.seed;
    if (nemesis_partitions) {
      chaos.partition = 1.0;
      chaos.loss_burst = 1.0;
      chaos.restart = 2.0;  // recover what the schedule crashes
    }
    if (nemesis_rm) {
      chaos.rm_crash = 1.0;
      chaos.rm_partition = 1.0;
    }
    nemesis = std::make_unique<Nemesis>(cluster, chaos);
    nemesis->start();
  }

  if (!partition.nodes.empty()) {
    cluster.simulator().at(
        seconds(partition.start), [&cluster, &partition] {
          const std::uint64_t id = cluster.isolate(partition.nodes);
          cluster.simulator().after(seconds(partition.hold),
                                    [&cluster, id] {
                                      cluster.heal_partition(id);
                                    });
        });
  }

  const double crash_at = flags.get_double("crash-at", 0);
  if (flags.has("crash-proxy")) {
    const auto victim =
        static_cast<std::uint32_t>(flags.get_int("crash-proxy", 0));
    cluster.simulator().at(seconds(crash_at),
                           [&cluster, victim] { cluster.crash_proxy(victim); });
  }
  if (flags.has("crash-storage")) {
    const auto victim =
        static_cast<std::uint32_t>(flags.get_int("crash-storage", 0));
    cluster.simulator().at(
        seconds(crash_at),
        [&cluster, victim] { cluster.crash_storage(victim); });
  }

  const std::vector<std::string> unknown = flags.unused();
  if (!unknown.empty()) {
    for (const std::string& flag : unknown) {
      std::fprintf(stderr, "unknown flag: --%s\n", flag.c_str());
    }
    usage();
    return 2;
  }

  cluster.run_for(seconds(warmup_s));
  const Time t0 = cluster.now();
  cluster.run_for(seconds(duration_s));
  const Time t1 = cluster.now();

  if (recorder) {
    workload::save_trace(record_ops, recorder->trace());
    std::fprintf(stderr, "op trace (%zu ops) written to %s\n",
                 recorder->trace().size(), record_ops.c_str());
  }

  const auto write_file = [](const std::string& path,
                             const std::string& content, const char* what,
                             std::size_t count) {
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(content.data(), 1, content.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "%zu %s written to %s\n", count, what,
                   path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
    }
  };
  if (!trace_out.empty()) {
    write_file(trace_out, obs::to_chrome_json(cluster.obs().spans().completed()),
               "traces (Chrome trace)",
               cluster.obs().spans().completed().size());
  }
  if (!trace_csv.empty()) {
    write_file(trace_csv, obs::to_span_csv(cluster.obs().spans().completed()),
               "traces (CSV)", cluster.obs().spans().completed().size());
  }
  if (!profile_trace.empty()) {
    const obs::ProfileReport prof = cluster.obs().profiler().report();
    write_file(profile_trace, cluster.obs().profiler().timeline_chrome_json(),
               "profile slices (Chrome trace)", prof.timeline_slices);
  }

  // One consistent summary for every output mode: the cluster-wide report
  // over the measurement window.
  const obs::RunReport report = cluster.report(t0, t1);
  if (!trace_events.empty()) {
    const std::string events = cluster.obs().tracer().to_json();
    if (std::FILE* f = std::fopen(trace_events.c_str(), "w")) {
      std::fwrite(events.data(), 1, events.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "%zu trace events written to %s\n",
                   cluster.obs().tracer().size(), trace_events.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_events.c_str());
    }
  }
  if (json) {
    std::printf("%s\n", report.to_json().c_str());
  } else if (csv) {
    std::printf("workload,%s\n", obs::RunReport::csv_header().c_str());
    std::printf("%s,%s\n", workload_name.c_str(), report.csv_row().c_str());
    // Attribution rows ride below the summary row as a second CSV section.
    if (report.has_profile) std::fputs(report.profile.to_csv().c_str(), stdout);
  } else {
    std::printf("\nworkload            %s\n", workload_name.c_str());
    std::fputs(report.render().c_str(), stdout);
  }
  return report.consistency_violations == 0 ? 0 : 1;
}
