// Fault-tolerant control plane: the paper notes that the Reconfiguration /
// Autonomic Managers can be made highly available with state-machine
// replication (Section 3). This example replicates the configuration state
// machine over a 3-replica MultiPaxos group, kills the leader mid-stream,
// and shows the surviving replicas holding an identical configuration
// history.
//
// Build & run:   ./build/examples/replicated_control_plane
#include <cstdio>

#include "kv/types.hpp"
#include "sim/simulator.hpp"
#include "smr/group.hpp"
#include "smr/messages.hpp"

int main() {
  using namespace qopt;

  sim::Simulator sim;
  smr::GroupOptions options;
  options.replicas = 3;
  smr::Group group(sim, options, nullptr);

  auto submit_change = [&](std::uint64_t id, int write_q,
                           std::uint32_t via) {
    smr::Command command;
    command.id = id;
    command.change.is_global = true;
    command.change.global = kv::QuorumConfig::of(5 - write_q + 1, write_q);
    group.submit(via, command);
    sim.run(sim.now() + milliseconds(200));
  };

  std::printf("replicating quorum reconfigurations over %u replicas...\n",
              group.size());
  submit_change(1, 1, 0);  // R=5,W=1
  submit_change(2, 5, 1);  // submitted via a follower: forwarded
  submit_change(3, 3, 2);

  std::printf("killing the leader (replica %u) mid-stream...\n",
              group.leader());
  group.crash_replica(group.leader());
  sim.run(sim.now() + seconds(1));  // failure detection + takeover
  std::printf("new leader: replica %u\n", group.leader());

  submit_change(4, 2, 1);
  submit_change(5, 4, 2);
  sim.run(sim.now() + seconds(2));

  // Fold each survivor's decided log into its own state machine.
  for (std::uint32_t i = 0; i < group.size(); ++i) {
    if (group.replica(i).crashed()) {
      std::printf("replica %u: crashed\n", i);
      continue;
    }
    smr::ConfigStateMachine machine(kv::QuorumConfig::of(3, 3), 5);
    for (const smr::Command& command : group.replica(i).applied_log()) {
      machine.apply(command);
    }
    std::printf("replica %u: %llu changes applied, cfno=%llu, "
                "default R=%d W=%d\n",
                i, static_cast<unsigned long long>(machine.applied()),
                static_cast<unsigned long long>(machine.config().cfno),
                machine.config().default_q.read_footprint(),
                machine.config().default_q.write_footprint());
  }
  std::printf("\nall surviving replicas hold the same configuration history "
              "despite the leader crash.\n");
  return 0;
}
