// Personal-file-storage daily cycle (the Dropbox pattern of [14] cited in
// the paper's introduction): users alternate between read-intensive periods
// at the office and upload-only periods in the evening. Q-OPT detects each
// shift and re-tunes the quorum system while serving traffic.
//
// Build & run:   ./build/examples/daily_cycle
#include <cstdio>

#include "autonomic/autonomic_manager.hpp"
#include "core/cluster.hpp"
#include "util/time.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace qopt;

  constexpr std::uint64_t kObjects = 8'000;
  ClusterConfig config;
  config.seed = 99;
  Cluster cluster(config);
  cluster.preload(kObjects, 16 << 10);  // 16 KiB files

  // One simulated "day": morning sync (read-heavy), work hours (mixed),
  // evening upload (write-only-ish). Cycles forever.
  const Duration hour = seconds(60);  // compressed time scale
  cluster.set_workload(std::make_shared<workload::PhasedWorkload>(
      std::vector<workload::PhasedWorkload::Phase>{
          {2 * hour, workload::ycsb_b(kObjects, 16 << 10)},
          {1 * hour, workload::ycsb_a(kObjects, 16 << 10)},
          {2 * hour, workload::backup_c(kObjects, 16 << 10)},
      }));

  autonomic::AutonomicOptions tuning;
  tuning.round_window = seconds(5);
  cluster.enable_autotuning(tuning);
  cluster.am()->set_event_callback([](Time t, const std::string& what) {
    std::printf("[%7.1fs] %s\n", to_seconds(t), what.c_str());
  });

  // Run one full cycle plus the start of the next day.
  const Duration day = 5 * hour;
  std::printf("%8s %10s %10s\n", "t(s)", "ops/s", "default-quorum");
  for (int slot = 0; slot < 6 * 5; ++slot) {
    cluster.run_for(day / 30);
    const Time now = cluster.now();
    const auto quorum = cluster.rm().config().default_q;
    std::printf("%8.0f %10.0f        R=%d,W=%d\n", to_seconds(now),
                cluster.metrics().throughput(now - day / 30, now),
                quorum.read_footprint(), quorum.write_footprint());
  }
  std::printf("\nreconfigurations over the day: %llu, violations: %zu\n",
              static_cast<unsigned long long>(
                  cluster.obs().registry().counter_value("rm.reconfigurations_completed")),
              cluster.checker().violations().size());
  return cluster.checker().clean() ? 0 : 1;
}
