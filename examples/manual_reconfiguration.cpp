// Manual reconfiguration walkthrough (the "Manual Reconfiguration" entry
// point of Figure 4): an administrator changes quorum sizes store-wide and
// per-object through the Reconfiguration Manager, with failure injection to
// demonstrate the epoch-change path and the protocol's indulgence to false
// suspicions.
//
// Build & run:   ./build/examples/manual_reconfiguration
#include <cstdio>

#include "core/cluster.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace qopt;

  ClusterConfig config;
  config.seed = 4;
  config.initial_quorum = {1, 5};
  Cluster cluster(config);
  cluster.preload(5'000, 4096);
  cluster.set_workload(workload::ycsb_a(5'000));
  cluster.run_for(seconds(5));

  auto show = [&](const char* when) {
    const auto& rm_config = cluster.rm().config();
    std::printf("%-42s default R=%d,W=%d cfno=%llu epoch=%llu "
                "(epoch changes so far: %llu)\n",
                when, rm_config.default_q.read_footprint(), rm_config.default_q.write_footprint(),
                static_cast<unsigned long long>(rm_config.cfno),
                static_cast<unsigned long long>(rm_config.epno),
                static_cast<unsigned long long>(
                    cluster.obs().registry().counter_value("rm.epoch_changes")));
  };
  show("initial configuration:");

  // ---- store-wide change, failure free: two-phase NEWQ/CONFIRM.
  cluster.reconfigure({3, 3}, [&](bool ok) {
    std::printf("  -> store-wide change to R=3,W=3 %s\n",
                ok ? "committed" : "REJECTED");
  });
  cluster.run_for(seconds(2));
  show("after store-wide reconfiguration:");

  // ---- per-object overrides for a write-hot directory of objects.
  cluster.reconfigure_objects({{10, {5, 1}}, {11, {5, 1}}, {12, {5, 1}}},
                              [&](bool ok) {
                                std::printf("  -> per-object batch %s\n",
                                            ok ? "committed" : "REJECTED");
                              });
  cluster.run_for(seconds(2));
  std::printf("  object 10 now uses R=%d,W=%d; object 99 uses R=%d,W=%d\n",
              cluster.rm().quorum_footprint_for(10).read_q,
              cluster.rm().quorum_footprint_for(10).write_q,
              cluster.rm().quorum_footprint_for(99).read_q,
              cluster.rm().quorum_footprint_for(99).write_q);

  // ---- an invalid request (R + W <= N) is rejected up front.
  cluster.reconfigure({2, 3}, [&](bool ok) {
    std::printf("  -> invalid change R=2,W=3 (R+W<=N) %s\n",
                ok ? "committed?!" : "rejected as expected");
  });
  cluster.run_for(seconds(1));

  // ---- reconfiguration while a proxy is falsely suspected: the RM cannot
  // wait for it, fences the old epoch on the storage nodes, and the live
  // proxy resynchronizes from NACKs. Safety is never at risk.
  std::printf("\ninjecting a 20 s false suspicion of proxy 2, then "
              "reconfiguring...\n");
  cluster.inject_false_suspicion(2, seconds(20));
  cluster.reconfigure({4, 2}, [&](bool ok) {
    std::printf("  -> change to R=4,W=2 under suspicion %s\n",
                ok ? "committed" : "REJECTED");
  });
  cluster.run_for(seconds(5));
  show("after reconfiguration under suspicion:");
  std::printf("  proxy 2 view: R=%d,W=%d (resynced via %llu NACKs)\n",
              cluster.proxy(2).default_quorum().read_q,
              cluster.proxy(2).default_quorum().write_q,
              static_cast<unsigned long long>(
                  cluster.obs().registry().counter_value(obs::instrument_name("proxy", 2, "nacks_received"))));

  cluster.run_for(seconds(5));
  std::printf("\nops completed: %llu, consistency violations: %zu\n",
              static_cast<unsigned long long>(cluster.metrics().total_ops()),
              cluster.checker().violations().size());
  return cluster.checker().clean() ? 0 : 1;
}
