// Trace capture and replay: record the operation stream of a live workload,
// persist it, and replay the identical stream under different quorum
// configurations — the methodology for what-if analysis on captured
// production traces (e.g. the Dropbox traces [14] the paper cites).
//
// Build & run:   ./build/examples/trace_replay
#include <cstdio>
#include <filesystem>

#include "core/cluster.hpp"
#include "kv/types.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace {

using namespace qopt;

double replay_under(const std::vector<workload::TraceEntry>& trace,
                    kv::QuorumConfig quorum) {
  ClusterConfig config;
  config.num_proxies = 1;
  config.clients_per_proxy = 10;
  config.initial_quorum = quorum;
  config.seed = 77;
  Cluster cluster(config);
  cluster.preload(5'000, 4096);
  cluster.set_workload(
      std::make_shared<workload::TraceSource>(trace, /*loop=*/true));
  cluster.run_for(seconds(20));
  return cluster.metrics().throughput(seconds(5), cluster.now());
}

}  // namespace

int main() {
  const char* kTracePath = "example_workload.trace.csv";

  // ---- capture: wrap the live workload in a recorder and run it.
  {
    ClusterConfig config;
    config.num_proxies = 1;
    config.clients_per_proxy = 10;
    config.seed = 42;
    Cluster cluster(config);
    cluster.preload(5'000, 4096);
    auto recorder = std::make_shared<workload::RecordingSource>(
        workload::ycsb_b(5'000));
    cluster.set_workload(recorder);
    cluster.run_for(seconds(10));
    workload::save_trace(kTracePath, recorder->trace());
    std::printf("captured %zu operations to %s\n", recorder->trace().size(),
                kTracePath);
  }

  // ---- what-if replay: the *same* operation stream under each quorum.
  const std::vector<workload::TraceEntry> trace =
      workload::load_trace(kTracePath);
  std::uint64_t writes = 0;
  for (const workload::TraceEntry& entry : trace) {
    writes += entry.op.is_write;
  }
  std::printf("trace profile: %zu ops, %.1f%% writes\n\n", trace.size(),
              100.0 * static_cast<double>(writes) /
                  static_cast<double>(trace.size()));

  std::printf("%-12s %12s\n", "quorum", "ops/s");
  for (int w = 1; w <= 5; ++w) {
    const kv::QuorumConfig quorum{5 - w + 1, w};
    std::printf("R=%d,W=%d      %12.0f\n", quorum.read_q, quorum.write_q,
                replay_under(trace, quorum));
  }
  std::filesystem::remove(kTracePath);
  return 0;
}
