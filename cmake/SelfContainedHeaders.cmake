# Self-contained-header verification (part of the qopt_arch tentpole; see
# docs/STATIC_ANALYSIS.md).
#
# For every public header under src/ and tools/, plus bench/bench_common.hpp,
# a one-line TU `#include "<header>"` is generated into the build tree and
# compiled into the qopt_header_checks OBJECT library (a member of ALL), so
# a header that silently leans on its includer's context fails the ordinary
# tier-1 build. configure_file only rewrites TUs whose content changed, so
# re-configuring does not trigger rebuilds.
function(qopt_add_header_checks)
  file(GLOB_RECURSE _qopt_src_headers RELATIVE ${CMAKE_SOURCE_DIR}/src
       CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/src/*.hpp)
  file(GLOB_RECURSE _qopt_tool_headers RELATIVE ${CMAKE_SOURCE_DIR}/tools
       CONFIGURE_DEPENDS ${CMAKE_SOURCE_DIR}/tools/*.hpp)
  set(_qopt_headers ${_qopt_src_headers} ${_qopt_tool_headers}
      bench/bench_common.hpp)

  set(_tus "")
  foreach(header IN LISTS _qopt_headers)
    set(QOPT_CHECK_HEADER ${header})
    string(REPLACE "/" "_" _tu_stem ${header})
    string(REGEX REPLACE "\\.hpp$" "" _tu_stem ${_tu_stem})
    set(_tu ${CMAKE_BINARY_DIR}/header_checks/check_${_tu_stem}.cpp)
    configure_file(${CMAKE_SOURCE_DIR}/cmake/header_check.cpp.in ${_tu} @ONLY)
    list(APPEND _tus ${_tu})
  endforeach()

  add_library(qopt_header_checks OBJECT ${_tus})
  target_include_directories(qopt_header_checks PRIVATE
      ${CMAKE_SOURCE_DIR}/src ${CMAKE_SOURCE_DIR}/tools ${CMAKE_SOURCE_DIR})
endfunction()
